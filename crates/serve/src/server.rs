//! The eden-serve daemon: a Unix-socket accept loop over the shard pool.
//!
//! One OS thread per connection parses frames and dispatches requests; the
//! actual evaluations run with the server's dedicated `eden-par` pool
//! installed, so sample batches fan out across the configured worker count
//! regardless of which connection thread carries the request. A counting
//! admission gate bounds the evaluations in flight (excess requests wait,
//! up to their deadline) so a burst of tenants queues instead of
//! oversubscribing the pool.
//!
//! Determinism: results are produced by [`EvalSession::evaluate_concurrent`]
//! under the session/`ApproximateMemory` thread-invariance contract, so a
//! response is bit-identical to a standalone `EvalSession` evaluation of the
//! same spec at any `--workers` count and regardless of which requests
//! shared the shard before it.

use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use eden_core::faults::ApproximateMemory;
use eden_core::session::EvalSession;
use eden_dnn::zoo::ModelZoo;
use eden_dnn::Dataset as _;
use eden_tensor::Tensor;

use crate::json::Json;
use crate::protocol::{error_response, write_json, EvalSpec, Request};
use crate::shard::{SessionPool, Shard, ShardKey};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path to listen on (a stale file at the path is removed).
    pub socket: PathBuf,
    /// Maximum live session shards (LRU eviction beyond this).
    pub max_sessions: usize,
    /// Maximum evaluations in flight; further requests wait at the
    /// admission gate up to their deadline.
    pub max_inflight: usize,
    /// Worker threads in the server's evaluation pool.
    pub workers: usize,
    /// Per-request deadline cap; a request's `timeout_ms` may only shorten
    /// it. The deadline is enforced at admission and between sweep points
    /// (a single in-flight evaluation is never preempted).
    pub request_timeout: Duration,
    /// Training epochs for zoo models.
    pub zoo_epochs: usize,
    /// Training seed for zoo models.
    pub zoo_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = eden_par::current_num_threads();
        ServeConfig {
            socket: PathBuf::from("/tmp/eden-serve.sock"),
            max_sessions: 8,
            max_inflight: (workers * 2).max(4),
            workers,
            request_timeout: Duration::from_secs(30),
            zoo_epochs: 2,
            zoo_seed: 3,
        }
    }
}

#[derive(Default)]
struct ServerStats {
    requests: AtomicU64,
    errors: AtomicU64,
    evals: AtomicU64,
    sweep_points: AtomicU64,
}

/// Counting semaphore with deadline-bounded acquisition.
struct Gate {
    inflight: Mutex<usize>,
    freed: Condvar,
    max: usize,
}

impl Gate {
    fn new(max: usize) -> Gate {
        Gate {
            inflight: Mutex::new(0),
            freed: Condvar::new(),
            max: max.max(1),
        }
    }

    fn acquire(&self, deadline: Instant) -> Result<GatePermit<'_>, String> {
        let mut inflight = self.inflight.lock().unwrap();
        while *inflight >= self.max {
            let now = Instant::now();
            if now >= deadline {
                return Err("deadline exceeded waiting for admission".to_string());
            }
            let (guard, timeout) = self.freed.wait_timeout(inflight, deadline - now).unwrap();
            inflight = guard;
            if timeout.timed_out() && *inflight >= self.max {
                return Err("deadline exceeded waiting for admission".to_string());
            }
        }
        *inflight += 1;
        Ok(GatePermit { gate: self })
    }
}

struct GatePermit<'a> {
    gate: &'a Gate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        let mut inflight = self.gate.inflight.lock().unwrap();
        *inflight -= 1;
        drop(inflight);
        self.gate.freed.notify_one();
    }
}

struct ServerState {
    config: ServeConfig,
    pool: SessionPool,
    workers: eden_par::ThreadPool,
    gate: Gate,
    stats: ServerStats,
    shutdown: AtomicBool,
}

/// Handle to a running server: shut it down and join its threads.
pub struct ServerHandle {
    socket: PathBuf,
    state: Arc<ServerState>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The socket path the server listens on.
    pub fn socket(&self) -> &PathBuf {
        &self.socket
    }

    /// Requests shutdown (idempotent): stops accepting, lets in-flight
    /// connections drain.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = UnixStream::connect(&self.socket);
    }

    /// Waits until the server stops (a client's `shutdown` request, or a
    /// prior [`ServerHandle::shutdown`] call) and joins the accept loop,
    /// which itself joins every connection thread. The daemon binary's
    /// main loop.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }

    /// Shuts down and drains: [`ServerHandle::shutdown`] +
    /// [`ServerHandle::wait`].
    pub fn join(self) {
        self.shutdown();
        self.wait();
    }
}

/// Binds the socket and spawns the accept loop. Returns once the server is
/// listening; requests are served on background threads until
/// [`ServerHandle::join`] (or a `shutdown` request) stops the loop.
pub fn serve(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let _ = std::fs::remove_file(&config.socket);
    let listener = UnixListener::bind(&config.socket)?;
    let zoo = Arc::new(ModelZoo::new(config.zoo_epochs, config.zoo_seed));
    let state = Arc::new(ServerState {
        pool: SessionPool::new(zoo, config.max_sessions),
        workers: eden_par::ThreadPool::new(config.workers),
        gate: Gate::new(config.max_inflight),
        stats: ServerStats::default(),
        shutdown: AtomicBool::new(false),
        config: config.clone(),
    });
    let socket = config.socket.clone();
    let accept_state = state.clone();
    let accept = std::thread::Builder::new()
        .name("eden-serve-accept".to_string())
        .spawn(move || accept_loop(listener, accept_state))?;
    Ok(ServerHandle {
        socket,
        state,
        accept: Some(accept),
    })
}

fn accept_loop(listener: UnixListener, state: Arc<ServerState>) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let conn_state = state.clone();
        if let Ok(handle) = std::thread::Builder::new()
            .name("eden-serve-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, conn_state);
            })
        {
            connections.push(handle);
        }
        connections.retain(|h| !h.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// Reads one frame like [`read_json`], but wakes every 100 ms while idle to
/// observe the shutdown flag: an idle keep-alive connection closes promptly
/// on shutdown instead of pinning the drain forever, while a frame already
/// in flight is always completed (and its response sent) first.
fn read_json_interruptible(
    stream: &mut UnixStream,
    shutdown: &AtomicBool,
) -> std::io::Result<Option<Json>> {
    use std::io::Read;
    let read_some = |stream: &mut UnixStream, buf: &mut [u8], mid_frame: bool| loop {
        match stream.read(buf) {
            Ok(n) => return Ok(Some(n)),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if !mid_frame && shutdown.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    };
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match read_some(stream, &mut len_buf[filled..], filled > 0)? {
            None => return Ok(None),
            Some(0) if filled == 0 => return Ok(None),
            Some(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Some(n) => filled += n,
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > crate::protocol::MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds the protocol limit",
        ));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match read_some(stream, &mut payload[filled..], true)? {
            None | Some(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Some(n) => filled += n,
        }
    }
    let text = std::str::from_utf8(&payload)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Json::parse(text)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

fn handle_connection(stream: UnixStream, state: Arc<ServerState>) -> std::io::Result<()> {
    let mut reader = stream.try_clone()?;
    reader.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream;
    while let Some(value) = read_json_interruptible(&mut reader, &state.shutdown)? {
        state.stats.requests.fetch_add(1, Ordering::Relaxed);
        let request = match Request::parse(&value) {
            Ok(request) => request,
            Err(message) => {
                state.stats.errors.fetch_add(1, Ordering::Relaxed);
                write_json(&mut writer, &error_response(message))?;
                continue;
            }
        };
        match request {
            Request::Ping => {
                write_json(
                    &mut writer,
                    &Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))]),
                )?;
            }
            Request::Stats => {
                write_json(&mut writer, &stats_response(&state))?;
            }
            Request::Shutdown => {
                state.shutdown.store(true, Ordering::SeqCst);
                write_json(&mut writer, &Json::obj([("ok", Json::Bool(true))]))?;
                // Unblock the accept loop so it can observe the flag.
                let _ = UnixStream::connect(&state.config.socket);
            }
            Request::Eval { spec, ber } => match handle_eval(&state, &spec, ber, None) {
                Ok(response) => write_json(&mut writer, &response)?,
                Err(message) => {
                    state.stats.errors.fetch_add(1, Ordering::Relaxed);
                    write_json(&mut writer, &error_response(message))?;
                }
            },
            Request::EvalBatch { spec, ber, batch } => {
                match handle_eval(&state, &spec, ber, Some(batch)) {
                    Ok(response) => write_json(&mut writer, &response)?,
                    Err(message) => {
                        state.stats.errors.fetch_add(1, Ordering::Relaxed);
                        write_json(&mut writer, &error_response(message))?;
                    }
                }
            }
            Request::Sweep { spec, bers } => {
                handle_sweep(&state, &spec, &bers, &mut writer)?;
            }
        }
    }
    Ok(())
}

fn request_deadline(state: &ServerState, spec: &EvalSpec) -> Instant {
    let cap = state.config.request_timeout;
    let timeout = match spec.timeout_ms {
        Some(ms) => cap.min(Duration::from_millis(ms)),
        None => cap,
    };
    Instant::now() + timeout
}

/// Resolves the request's shard and sample slice.
fn resolve(state: &ServerState, spec: &EvalSpec) -> Result<(Arc<Shard>, bool), String> {
    let key = ShardKey::for_spec(spec)?;
    let (shard, hit) = state.pool.get_or_build_traced(key);
    let available = shard.dataset.test().len();
    if spec.start.saturating_add(spec.count) > available {
        return Err(format!(
            "sample range {}..{} out of bounds for the {} test set ({available} samples)",
            spec.start,
            spec.start + spec.count,
            spec.model.key(),
        ));
    }
    Ok((shard, hit))
}

fn build_memory(spec: &EvalSpec, ber: f64) -> Result<ApproximateMemory, String> {
    match &spec.error_model {
        None => Ok(ApproximateMemory::reliable(spec.seed)),
        Some(e) => Ok(ApproximateMemory::from_model(
            e.template()?.with_ber(ber),
            spec.seed,
        )),
    }
}

/// Runs one admitted evaluation on the server pool. Maps the empty-sample
/// NaN accuracy sentinel to `Err` so it becomes a structured error response
/// instead of a non-finite number in a JSON frame.
fn run_eval(
    state: &ServerState,
    session: &EvalSession<'static>,
    samples: &[(Tensor, usize)],
    memory: &mut ApproximateMemory,
    deadline: Instant,
    batch: Option<usize>,
) -> Result<f32, String> {
    let _permit = state.gate.acquire(deadline)?;
    if Instant::now() >= deadline {
        return Err("deadline exceeded before execution".to_string());
    }
    let accuracy = state.workers.install(|| match batch {
        Some(cap) => session.evaluate_concurrent_batched(samples, memory, cap),
        None => session.evaluate_concurrent(samples, memory),
    });
    state.stats.evals.fetch_add(1, Ordering::Relaxed);
    if accuracy.is_nan() {
        return Err(
            "empty sample set: accuracy is undefined (NaN sentinel suppressed)".to_string(),
        );
    }
    Ok(accuracy)
}

fn eval_body(accuracy: f32, memory: &ApproximateMemory, shard_hit: bool) -> Vec<(String, Json)> {
    let stats = memory.stats();
    vec![
        ("accuracy".to_string(), Json::num(accuracy as f64)),
        ("loads".to_string(), Json::num(stats.loads as f64)),
        ("bit_flips".to_string(), Json::num(stats.bit_flips as f64)),
        (
            "corrections".to_string(),
            Json::num(stats.corrections as f64),
        ),
        ("shard_hit".to_string(), Json::Bool(shard_hit)),
    ]
}

fn handle_eval(
    state: &ServerState,
    spec: &EvalSpec,
    ber: f64,
    batch: Option<usize>,
) -> Result<Json, String> {
    let deadline = request_deadline(state, spec);
    let (shard, hit) = resolve(state, spec)?;
    let samples = &shard.dataset.test()[spec.start..spec.start + spec.count];
    let mut memory = build_memory(spec, ber)?;
    let accuracy = run_eval(state, &shard.session, samples, &mut memory, deadline, batch)?;
    let mut body = vec![("ok".to_string(), Json::Bool(true))];
    body.extend(eval_body(accuracy, &memory, hit));
    Ok(Json::Obj(body.into_iter().collect()))
}

/// Streams a sweep: one `{"point": ...}` frame per BER as soon as it is
/// computed, then a terminal `{"done": true}` frame. A deadline or
/// evaluation error ends the stream with an error frame carrying `"done"`.
fn handle_sweep(
    state: &ServerState,
    spec: &EvalSpec,
    bers: &[f64],
    writer: &mut impl Write,
) -> std::io::Result<()> {
    let deadline = request_deadline(state, spec);
    let (shard, hit) = match resolve(state, spec) {
        Ok(resolved) => resolved,
        Err(message) => {
            state.stats.errors.fetch_add(1, Ordering::Relaxed);
            let mut response = error_response(message);
            if let Json::Obj(map) = &mut response {
                map.insert("done".to_string(), Json::Bool(true));
            }
            return write_json(writer, &response);
        }
    };
    let samples = &shard.dataset.test()[spec.start..spec.start + spec.count];
    let mut streamed = 0u64;
    for &ber in bers {
        let result = build_memory(spec, ber).and_then(|mut memory| {
            let accuracy = run_eval(state, &shard.session, samples, &mut memory, deadline, None)?;
            Ok((accuracy, memory))
        });
        match result {
            Ok((accuracy, memory)) => {
                streamed += 1;
                state.stats.sweep_points.fetch_add(1, Ordering::Relaxed);
                let mut point = vec![("ber".to_string(), Json::num(ber))];
                point.extend(eval_body(accuracy, &memory, hit));
                write_json(
                    writer,
                    &Json::obj([
                        ("ok", Json::Bool(true)),
                        ("point", Json::Obj(point.into_iter().collect())),
                    ]),
                )?;
            }
            Err(message) => {
                state.stats.errors.fetch_add(1, Ordering::Relaxed);
                let mut response = error_response(message);
                if let Json::Obj(map) = &mut response {
                    map.insert("done".to_string(), Json::Bool(true));
                    map.insert("points".to_string(), Json::num(streamed as f64));
                }
                return write_json(writer, &response);
            }
        }
    }
    write_json(
        writer,
        &Json::obj([
            ("ok", Json::Bool(true)),
            ("done", Json::Bool(true)),
            ("points", Json::num(streamed as f64)),
        ]),
    )
}

fn stats_response(state: &ServerState) -> Json {
    let pool = state.pool.counters();
    let weak = state.pool.weak_map_counters();
    let ckpt = state.pool.checkpoint_counters();
    let batches = state.pool.batch_counters();
    Json::obj([
        ("ok", Json::Bool(true)),
        (
            "requests",
            Json::num(state.stats.requests.load(Ordering::Relaxed) as f64),
        ),
        (
            "errors",
            Json::num(state.stats.errors.load(Ordering::Relaxed) as f64),
        ),
        (
            "evals",
            Json::num(state.stats.evals.load(Ordering::Relaxed) as f64),
        ),
        (
            "sweep_points",
            Json::num(state.stats.sweep_points.load(Ordering::Relaxed) as f64),
        ),
        ("workers", Json::num(state.workers.num_threads() as f64)),
        (
            "shards",
            Json::obj([
                ("hits", Json::num(pool.hits as f64)),
                ("misses", Json::num(pool.misses as f64)),
                ("evictions", Json::num(pool.evictions as f64)),
                ("live", Json::num(pool.live as f64)),
            ]),
        ),
        (
            "weak_maps",
            Json::obj([
                ("hits", Json::num(weak.hits as f64)),
                ("misses", Json::num(weak.misses as f64)),
            ]),
        ),
        (
            "checkpoints",
            Json::obj([
                ("hits", Json::num(ckpt.hits as f64)),
                ("misses", Json::num(ckpt.misses as f64)),
                ("evictions", Json::num(ckpt.evictions as f64)),
                ("resident_bytes", Json::num(ckpt.resident_bytes as f64)),
            ]),
        ),
        (
            "batches",
            Json::obj([
                ("groups", Json::num(batches.groups as f64)),
                ("samples_batched", Json::num(batches.batched_samples as f64)),
                (
                    "fallback_samples",
                    Json::num(batches.fallback_samples as f64),
                ),
            ]),
        ),
        (
            "models_built",
            Json::num(state.pool.zoo().models_built() as f64),
        ),
    ])
}
