//! The eden-serve wire protocol: length-prefixed JSON frames and the
//! request/response vocabulary.
//!
//! Every message is one JSON object preceded by its byte length as a
//! big-endian `u32`. Requests carry an `"op"` field; the server answers
//! `eval`/`ping`/`stats`/`shutdown` with exactly one frame, and `sweep`
//! with one `{"point": ...}` frame per BER followed by a terminal
//! `{"done": true, ...}` frame. Error responses are
//! `{"ok": false, "error": "..."}` — including the structured error the
//! server substitutes for the empty-sample NaN accuracy sentinel, which
//! must never reach the JSON writer.
//!
//! Field validation reuses the workspace `FromStr` implementations
//! ([`ModelId`], [`Precision`], [`InferenceBackend`]) so a typo like
//! `"backend": "ntaive"` fails a request with the same message the CLI
//! parsers print, instead of silently running the default configuration.

use std::io::{Read, Write};

use eden_core::inference::InferenceBackend;
use eden_dnn::zoo::ModelId;
use eden_dram::ErrorModel;
use eden_tensor::Precision;

use crate::json::Json;

/// Upper bound on one frame's payload; a length prefix beyond this is a
/// protocol error, not an allocation request.
pub const MAX_FRAME: usize = 1 << 20;

/// Reads one length-prefixed frame. Returns `Ok(None)` on clean EOF at a
/// frame boundary (the peer hung up between requests).
pub fn read_frame(reader: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = reader.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            ));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one length-prefixed frame.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds the protocol limit",
        ));
    }
    writer.write_all(&(payload.len() as u32).to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Serializes `value` and writes it as one frame.
pub fn write_json(writer: &mut impl Write, value: &Json) -> std::io::Result<()> {
    write_frame(writer, value.to_string().as_bytes())
}

/// Reads one frame and parses it as JSON. `Ok(None)` on clean EOF.
pub fn read_json(reader: &mut impl Read) -> std::io::Result<Option<Json>> {
    let Some(payload) = read_frame(reader)? else {
        return Ok(None);
    };
    let text = std::str::from_utf8(&payload)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Json::parse(text)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// The error-model half of an evaluation spec — everything except the
/// target BER, mirroring the template-then-`with_ber` pattern the bench
/// sweeps use. Absent from a request, the evaluation runs on reliable
/// memory.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorSpec {
    /// `"uniform" | "bitline" | "wordline" | "data-dependent"`.
    pub kind: String,
    /// Weak-cell fraction (`p`).
    pub p: f64,
    /// Flip probability (`f`), or `f_one`/`f_zero` for the data-dependent
    /// model.
    pub f: f64,
    /// Spatial spread for the bitline/wordline models.
    pub spread: f64,
    /// `f_one` for the data-dependent model.
    pub f_one: f64,
    /// `f_zero` for the data-dependent model.
    pub f_zero: f64,
    /// Error-model structure seed.
    pub seed: u64,
}

impl Default for ErrorSpec {
    fn default() -> Self {
        // The fig08 template parameters.
        ErrorSpec {
            kind: "uniform".to_string(),
            p: 0.02,
            f: 0.5,
            spread: 0.9,
            f_one: 0.7,
            f_zero: 0.3,
            seed: 5,
        }
    }
}

impl ErrorSpec {
    /// Builds the pre-BER error-model template this spec describes.
    pub fn template(&self) -> Result<ErrorModel, String> {
        match self.kind.as_str() {
            "uniform" => Ok(ErrorModel::uniform(self.p, self.f, self.seed)),
            "bitline" => Ok(ErrorModel::bitline(self.p, self.f, self.spread, self.seed)),
            "wordline" => Ok(ErrorModel::wordline(self.p, self.f, self.spread, self.seed)),
            "data-dependent" => Ok(ErrorModel::data_dependent(
                self.p,
                self.f_one,
                self.f_zero,
                self.seed,
            )),
            other => Err(format!(
                "unknown error-model kind {other:?} (expected uniform, bitline, wordline \
                 or data-dependent)"
            )),
        }
    }
}

/// The shared body of `eval` and `sweep` requests.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSpec {
    /// Which zoo model to evaluate.
    pub model: ModelId,
    /// Stored-data precision.
    pub precision: Precision,
    /// Execution backend.
    pub backend: InferenceBackend,
    /// Error model template; `None` evaluates on reliable memory.
    pub error_model: Option<ErrorSpec>,
    /// First test-set sample index.
    pub start: usize,
    /// Number of test-set samples.
    pub count: usize,
    /// Memory seed (`ApproximateMemory` load-stream seed).
    pub seed: u64,
    /// Optional per-request deadline override (clamped to the server cap).
    pub timeout_ms: Option<u64>,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Server/pool/cache counters.
    Stats,
    /// Graceful shutdown: drain connections, then exit the accept loop.
    Shutdown,
    /// One accuracy evaluation at `ber`.
    Eval { spec: EvalSpec, ber: f64 },
    /// One accuracy evaluation at `ber` with an explicit weight-stationary
    /// batch-group cap (`batch == 1` forces per-sample execution). Results
    /// are bit-identical to `eval` at any cap; only the throughput differs.
    EvalBatch {
        spec: EvalSpec,
        ber: f64,
        batch: usize,
    },
    /// A streamed accuracy-vs-BER sweep.
    Sweep { spec: EvalSpec, bers: Vec<f64> },
}

fn parse_error_spec(value: &Json) -> Result<ErrorSpec, String> {
    let mut spec = ErrorSpec::default();
    if let Some(kind) = value.get("kind") {
        spec.kind = kind
            .as_str()
            .ok_or("error_model.kind must be a string")?
            .to_string();
    }
    for (field, slot) in [
        ("p", &mut spec.p),
        ("f", &mut spec.f),
        ("spread", &mut spec.spread),
        ("f_one", &mut spec.f_one),
        ("f_zero", &mut spec.f_zero),
    ] {
        if let Some(v) = value.get(field) {
            *slot = v
                .as_f64()
                .ok_or_else(|| format!("error_model.{field} must be a number"))?;
        }
    }
    if let Some(v) = value.get("seed") {
        spec.seed = v
            .as_u64()
            .ok_or("error_model.seed must be a whole number")?;
    }
    // Fail construction problems (unknown kind) at parse time, not when the
    // shard is already being built.
    spec.template()?;
    Ok(spec)
}

fn parse_spec(value: &Json) -> Result<EvalSpec, String> {
    let model: ModelId = value
        .get("model")
        .and_then(Json::as_str)
        .ok_or("missing string field \"model\"")?
        .parse()?;
    let precision: Precision = value
        .get("precision")
        .and_then(Json::as_str)
        .ok_or("missing string field \"precision\"")?
        .parse()?;
    let backend = match value.get("backend") {
        None => InferenceBackend::default(),
        Some(v) => v
            .as_str()
            .ok_or("\"backend\" must be a string")?
            .parse::<InferenceBackend>()?,
    };
    let error_model = match value.get("error_model") {
        None | Some(Json::Null) => None,
        Some(v) => Some(parse_error_spec(v)?),
    };
    let start = match value.get("start") {
        None => 0,
        Some(v) => v.as_u64().ok_or("\"start\" must be a whole number")? as usize,
    };
    let count = value
        .get("count")
        .ok_or("missing field \"count\"")?
        .as_u64()
        .ok_or("\"count\" must be a whole number")? as usize;
    let seed = match value.get("seed") {
        None => 11,
        Some(v) => v.as_u64().ok_or("\"seed\" must be a whole number")?,
    };
    let timeout_ms = match value.get("timeout_ms") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or("\"timeout_ms\" must be a whole number")?),
    };
    Ok(EvalSpec {
        model,
        precision,
        backend,
        error_model,
        start,
        count,
        seed,
        timeout_ms,
    })
}

impl Request {
    /// Parses and validates one request frame.
    pub fn parse(value: &Json) -> Result<Request, String> {
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field \"op\"")?;
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "eval" | "eval-batch" => {
                let spec = parse_spec(value)?;
                let ber = match value.get("ber") {
                    None => 0.0,
                    Some(v) => v.as_f64().ok_or("\"ber\" must be a number")?,
                };
                if !(0.0..=1.0).contains(&ber) {
                    return Err(format!("\"ber\" must be in [0, 1], got {ber}"));
                }
                if spec.error_model.is_some() && value.get("ber").is_none() {
                    return Err(format!("{op} with an error_model requires \"ber\""));
                }
                if op == "eval" {
                    return Ok(Request::Eval { spec, ber });
                }
                let batch = match value.get("batch") {
                    None => eden_core::session::DEFAULT_BATCH_LIMIT,
                    Some(v) => v.as_u64().ok_or("\"batch\" must be a whole number")? as usize,
                };
                if batch == 0 {
                    return Err("\"batch\" must be at least 1".to_string());
                }
                Ok(Request::EvalBatch { spec, ber, batch })
            }
            "sweep" => {
                let spec = parse_spec(value)?;
                if spec.error_model.is_none() {
                    return Err("sweep requires an \"error_model\"".to_string());
                }
                let points = value
                    .get("bers")
                    .and_then(Json::as_arr)
                    .ok_or("missing array field \"bers\"")?;
                if points.is_empty() {
                    return Err("\"bers\" must not be empty".to_string());
                }
                let mut bers = Vec::with_capacity(points.len());
                for p in points {
                    let ber = p.as_f64().ok_or("\"bers\" entries must be numbers")?;
                    if !(0.0..=1.0).contains(&ber) {
                        return Err(format!("\"bers\" entries must be in [0, 1], got {ber}"));
                    }
                    bers.push(ber);
                }
                Ok(Request::Sweep { spec, bers })
            }
            other => Err(format!(
                "unknown op {other:?} (expected ping, stats, eval, eval-batch, sweep or shutdown)"
            )),
        }
    }
}

/// Builds the standard error response frame.
pub fn error_response(message: impl Into<String>) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_json(&mut buf, &Json::obj([("op", Json::str("ping"))])).unwrap();
        write_json(&mut buf, &Json::obj([("op", Json::str("stats"))])).unwrap();
        let mut cursor = Cursor::new(buf);
        let a = read_json(&mut cursor).unwrap().unwrap();
        let b = read_json(&mut cursor).unwrap().unwrap();
        assert_eq!(a.get("op").and_then(Json::as_str), Some("ping"));
        assert_eq!(b.get("op").and_then(Json::as_str), Some("stats"));
        assert!(read_json(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_and_truncated_frames_are_errors() {
        let huge = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        assert!(read_frame(&mut Cursor::new(huge)).is_err());
        let truncated = vec![0, 0, 0, 9, b'{'];
        assert!(read_frame(&mut Cursor::new(truncated)).is_err());
    }

    fn parse(doc: &str) -> Result<Request, String> {
        Request::parse(&Json::parse(doc).unwrap())
    }

    #[test]
    fn eval_requests_parse_with_defaults() {
        let req = parse(
            r#"{"op":"eval","model":"lenet","precision":"int8","count":8,
                "error_model":{"kind":"uniform"},"ber":0.001}"#,
        )
        .unwrap();
        match req {
            Request::Eval { spec, ber } => {
                assert_eq!(spec.model, ModelId::LeNet);
                assert_eq!(spec.precision, Precision::Int8);
                assert_eq!(spec.backend, InferenceBackend::default());
                assert_eq!(spec.start, 0);
                assert_eq!(spec.count, 8);
                assert_eq!(spec.seed, 11);
                assert_eq!(ber, 1e-3);
                assert_eq!(spec.error_model.unwrap().kind, "uniform");
            }
            other => panic!("expected eval, got {other:?}"),
        }
    }

    #[test]
    fn typos_fail_validation_like_the_cli_parsers() {
        // The exact failure class that used to be downgraded to a stderr
        // note by parse_backend: a typo'd backend.
        let err = parse(
            r#"{"op":"eval","model":"lenet","precision":"int8","count":8,
                "backend":"ntaive"}"#,
        )
        .unwrap_err();
        assert!(err.contains("ntaive"), "{err}");
        assert!(parse(r#"{"op":"eval","model":"nope","precision":"int8","count":8}"#).is_err());
        assert!(parse(r#"{"op":"eval","model":"lenet","precision":"int9","count":8}"#).is_err());
        assert!(parse(
            r#"{"op":"eval","model":"lenet","precision":"int8","count":8,
                "error_model":{"kind":"unifrom"},"ber":0.01}"#
        )
        .is_err());
        assert!(parse(r#"{"op":"evla"}"#).is_err());
    }

    #[test]
    fn eval_batch_requests_parse_and_validate_the_cap() {
        let req = parse(
            r#"{"op":"eval-batch","model":"lenet","precision":"int8","count":8,
                "error_model":{"kind":"uniform"},"ber":0.001,"batch":8}"#,
        )
        .unwrap();
        match req {
            Request::EvalBatch { spec, ber, batch } => {
                assert_eq!(spec.model, ModelId::LeNet);
                assert_eq!(ber, 1e-3);
                assert_eq!(batch, 8);
            }
            other => panic!("expected eval-batch, got {other:?}"),
        }
        // The cap defaults to the session default and rejects zero.
        let req =
            parse(r#"{"op":"eval-batch","model":"lenet","precision":"int8","count":8}"#).unwrap();
        match req {
            Request::EvalBatch { batch, .. } => {
                assert_eq!(batch, eden_core::session::DEFAULT_BATCH_LIMIT);
            }
            other => panic!("expected eval-batch, got {other:?}"),
        }
        assert!(parse(
            r#"{"op":"eval-batch","model":"lenet","precision":"int8","count":8,"batch":0}"#
        )
        .is_err());
        assert!(parse(
            r#"{"op":"eval-batch","model":"lenet","precision":"int8","count":8,
                "error_model":{"kind":"uniform"}}"#
        )
        .is_err());
    }

    #[test]
    fn sweep_requires_error_model_and_valid_bers() {
        assert!(parse(
            r#"{"op":"sweep","model":"lenet","precision":"int8","count":8,
                "bers":[0.001]}"#
        )
        .is_err());
        assert!(parse(
            r#"{"op":"sweep","model":"lenet","precision":"int8","count":8,
                "error_model":{"kind":"uniform"},"bers":[]}"#
        )
        .is_err());
        assert!(parse(
            r#"{"op":"sweep","model":"lenet","precision":"int8","count":8,
                "error_model":{"kind":"uniform"},"bers":[2.0]}"#
        )
        .is_err());
        let req = parse(
            r#"{"op":"sweep","model":"lenet","precision":"int8","count":8,
                "error_model":{"kind":"wordline","spread":0.8},"bers":[0.001,0.01]}"#,
        )
        .unwrap();
        match req {
            Request::Sweep { spec, bers } => {
                assert_eq!(bers, vec![1e-3, 1e-2]);
                assert_eq!(spec.error_model.unwrap().spread, 0.8);
            }
            other => panic!("expected sweep, got {other:?}"),
        }
    }
}
