//! Session sharding: one hot [`EvalSession`] per distinct serving
//! configuration, pooled with LRU eviction.
//!
//! A shard is keyed by `(model id, precision, backend, error-model template
//! fingerprint)` — exactly the state an `EvalSession` amortizes. Requests
//! that differ only in BER, memory seed or sample slice land on the same
//! shard and share its clean bit images, weak-map cache and scratch arenas;
//! the per-request `ApproximateMemory` carries everything that varies.
//!
//! The pool holds `Arc<OnceLock<Arc<Shard>>>` slots so the map lock is
//! released before any model training or session construction runs: two
//! racing requests for the same new key serialize on the slot's `OnceLock`
//! while requests for other keys proceed. Eviction removes the
//! least-recently-used slot (by logical tick, for determinism); in-flight
//! requests keep an evicted shard alive through their own `Arc` and simply
//! finish on it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use eden_core::faults::CacheCounters;
use eden_core::inference::InferenceBackend;
use eden_core::session::{BatchCounters, CheckpointCounters, EvalSession};
use eden_dnn::zoo::{ModelId, ModelZoo};
use eden_dnn::SyntheticVision;
use eden_tensor::Precision;

use crate::protocol::EvalSpec;

/// Identity of a session shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardKey {
    /// Zoo model served by the shard.
    pub model: ModelId,
    /// Stored-data precision.
    pub precision: Precision,
    /// Execution backend.
    pub backend: InferenceBackend,
    /// [`eden_dram::ErrorModel::fingerprint`] of the pre-BER template, or 0
    /// for reliable-memory evaluation.
    pub model_fingerprint: u64,
}

impl ShardKey {
    /// The shard key a request spec maps to.
    pub fn for_spec(spec: &EvalSpec) -> Result<ShardKey, String> {
        let model_fingerprint = match &spec.error_model {
            None => 0,
            Some(e) => e.template()?.fingerprint(),
        };
        Ok(ShardKey {
            model: spec.model,
            precision: spec.precision,
            backend: spec.backend,
            model_fingerprint,
        })
    }
}

/// One live serving shard: a hot session plus the dataset requests slice
/// their samples from.
pub struct Shard {
    /// The shard's identity.
    pub key: ShardKey,
    /// The shared session; requests evaluate through
    /// [`EvalSession::evaluate_concurrent`].
    pub session: EvalSession<'static>,
    /// The model's dataset (test split served to requests).
    pub dataset: Arc<SyntheticVision>,
}

struct SlotEntry {
    cell: Arc<OnceLock<Arc<Shard>>>,
    last_used: u64,
}

struct PoolState {
    slots: HashMap<ShardKey, SlotEntry>,
    tick: u64,
}

/// Snapshot of the pool's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Lookups that found a live shard.
    pub hits: u64,
    /// Lookups that had to build a shard.
    pub misses: u64,
    /// Shards evicted by the LRU policy.
    pub evictions: u64,
    /// Shards currently pooled.
    pub live: usize,
}

/// The LRU pool of session shards.
pub struct SessionPool {
    zoo: Arc<ModelZoo>,
    capacity: usize,
    state: Mutex<PoolState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl SessionPool {
    /// Creates a pool holding at most `capacity` live shards, building
    /// networks through `zoo`.
    pub fn new(zoo: Arc<ModelZoo>, capacity: usize) -> Self {
        SessionPool {
            zoo,
            capacity: capacity.max(1),
            state: Mutex::new(PoolState {
                slots: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The zoo the pool builds shards from.
    pub fn zoo(&self) -> &Arc<ModelZoo> {
        &self.zoo
    }

    /// The shard for `key`, building it (and possibly evicting the
    /// least-recently-used shard) on a miss. Model training and session
    /// construction run outside the pool lock; concurrent requests for the
    /// same new key serialize on the slot's `OnceLock`, so each shard is
    /// built exactly once.
    pub fn get_or_build(&self, key: ShardKey) -> Arc<Shard> {
        self.get_or_build_traced(key).0
    }

    /// Like [`SessionPool::get_or_build`], also reporting whether the lookup
    /// hit a live shard (for per-request cache attribution in responses).
    pub fn get_or_build_traced(&self, key: ShardKey) -> (Arc<Shard>, bool) {
        let cell = {
            let mut state = self.state.lock().unwrap();
            state.tick += 1;
            let tick = state.tick;
            if let Some(entry) = state.slots.get_mut(&key) {
                entry.last_used = tick;
                let cell = entry.cell.clone();
                drop(state);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (self.init(cell, key), true);
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            if state.slots.len() >= self.capacity {
                self.evict_lru(&mut state);
            }
            let cell = Arc::new(OnceLock::new());
            state.slots.insert(
                key,
                SlotEntry {
                    cell: cell.clone(),
                    last_used: tick,
                },
            );
            cell
        };
        (self.init(cell, key), false)
    }

    fn init(&self, cell: Arc<OnceLock<Arc<Shard>>>, key: ShardKey) -> Arc<Shard> {
        cell.get_or_init(|| {
            let entry = self.zoo.get(key.model);
            let session = EvalSession::new_shared(entry.net, key.precision, key.backend);
            Arc::new(Shard {
                key,
                session,
                dataset: entry.dataset,
            })
        })
        .clone()
    }

    /// Evicts the least-recently-used slot. Requests still holding the
    /// shard's `Arc` finish on it; if the pool held the last reference, the
    /// session's transient probe state is released immediately so the memory
    /// comes back before the `Arc` drops.
    fn evict_lru(&self, state: &mut PoolState) {
        let Some(victim) = state
            .slots
            .iter()
            .min_by_key(|(_, entry)| entry.last_used)
            .map(|(key, _)| *key)
        else {
            return;
        };
        let entry = state.slots.remove(&victim).unwrap();
        self.evictions.fetch_add(1, Ordering::Relaxed);
        if let Ok(lock) = Arc::try_unwrap(entry.cell) {
            if let Some(mut shard) = lock.into_inner().and_then(|a| Arc::try_unwrap(a).ok()) {
                shard.session.release_transient_state();
            }
        }
    }

    /// The pool's hit/miss/eviction counters.
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            live: self.state.lock().unwrap().slots.len(),
        }
    }

    /// Weak-map cache hits/misses summed over the live shards.
    pub fn weak_map_counters(&self) -> CacheCounters {
        let state = self.state.lock().unwrap();
        let mut total = CacheCounters { hits: 0, misses: 0 };
        for entry in state.slots.values() {
            if let Some(shard) = entry.cell.get() {
                let c = shard.session.weak_map_cache().counters();
                total.hits += c.hits;
                total.misses += c.misses;
            }
        }
        total
    }

    /// Clean-activation checkpoint counters summed over the live shards
    /// (incremental re-evaluation: resumed lanes / cold lanes / evicted
    /// checkpoints / bytes currently resident across every shard's store).
    pub fn checkpoint_counters(&self) -> CheckpointCounters {
        let state = self.state.lock().unwrap();
        let mut total = CheckpointCounters::default();
        for entry in state.slots.values() {
            if let Some(shard) = entry.cell.get() {
                let c = shard.session.checkpoint_counters();
                total.hits += c.hits;
                total.misses += c.misses;
                total.evictions += c.evictions;
                total.resident_bytes += c.resident_bytes;
            }
        }
        total
    }

    /// Batch-group counters summed over the live shards (weight-stationary
    /// batching: multi-sample groups formed, samples executed batched,
    /// per-sample fallbacks).
    pub fn batch_counters(&self) -> BatchCounters {
        let state = self.state.lock().unwrap();
        let mut total = BatchCounters::default();
        for entry in state.slots.values() {
            if let Some(shard) = entry.cell.get() {
                let c = shard.session.batch_counters();
                total.groups += c.groups;
                total.batched_samples += c.batched_samples;
                total.fallback_samples += c.fallback_samples;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ErrorSpec;

    fn spec(model: ModelId, precision: Precision) -> EvalSpec {
        EvalSpec {
            model,
            precision,
            backend: InferenceBackend::default(),
            error_model: Some(ErrorSpec::default()),
            start: 0,
            count: 4,
            seed: 11,
            timeout_ms: None,
        }
    }

    #[test]
    fn shard_keys_ignore_ber_but_not_the_template() {
        let base = spec(ModelId::LeNet, Precision::Int8);
        let mut other_kind = base.clone();
        other_kind.error_model = Some(ErrorSpec {
            kind: "bitline".to_string(),
            ..ErrorSpec::default()
        });
        let mut other_seed = base.clone();
        other_seed.seed = 99; // memory seed: not part of the shard key
        assert_eq!(
            ShardKey::for_spec(&base).unwrap(),
            ShardKey::for_spec(&other_seed).unwrap()
        );
        assert_ne!(
            ShardKey::for_spec(&base).unwrap(),
            ShardKey::for_spec(&other_kind).unwrap()
        );
        let mut reliable = base.clone();
        reliable.error_model = None;
        assert_eq!(ShardKey::for_spec(&reliable).unwrap().model_fingerprint, 0);
    }

    #[test]
    fn pool_reuses_shards_and_evicts_the_coldest() {
        let zoo = Arc::new(ModelZoo::new(1, 3));
        let pool = SessionPool::new(zoo, 2);
        let k8 = ShardKey::for_spec(&spec(ModelId::LeNet, Precision::Int8)).unwrap();
        let k4 = ShardKey::for_spec(&spec(ModelId::LeNet, Precision::Int4)).unwrap();
        let k16 = ShardKey::for_spec(&spec(ModelId::LeNet, Precision::Int16)).unwrap();

        let a = pool.get_or_build(k8);
        let b = pool.get_or_build(k8);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one shard");
        pool.get_or_build(k4);
        pool.get_or_build(k8); // refresh k8 so k4 is the LRU victim
        pool.get_or_build(k16); // capacity 2: evicts k4
        let c = pool.get_or_build(k8);
        assert!(Arc::ptr_eq(&a, &c), "hot shard must survive the eviction");

        let counters = pool.counters();
        assert_eq!(counters.misses, 3, "k8, k4, k16 each built once");
        assert_eq!(counters.hits, 3);
        assert_eq!(counters.evictions, 1);
        assert_eq!(counters.live, 2);
        // The zoo built the network once even though three shards used it.
        assert_eq!(pool.zoo().models_built(), 1);
    }
}
