//! eden-serve: a long-running, sharded evaluation service on
//! [`EvalSession`](eden_core::session::EvalSession).
//!
//! EDEN's deployment story is continuous DNN inference on approximate DRAM;
//! this crate turns the one-shot evaluation stack into a daemon that serves
//! many concurrent tenants from shared hot state:
//!
//! - **Protocol** ([`protocol`]): length-prefixed JSON frames over a Unix
//!   socket — `eval`, `sweep` (streamed incrementally), `stats`, `ping`,
//!   `shutdown`. The workspace's serde is an offline marker shim, so the
//!   JSON itself is the crate's own minimal implementation ([`json`]).
//! - **Sharding** ([`shard`]): one hot `EvalSession` per
//!   `(model, precision, backend, error-model template fingerprint)`,
//!   LRU-evicted at capacity, built from an `Arc`-shared
//!   [`ModelZoo`](eden_dnn::zoo::ModelZoo) so every shard of a model shares
//!   one trained network.
//! - **Serving** ([`server`]): a connection thread per client, evaluations
//!   batched onto a dedicated `eden-par` pool, a counting admission gate
//!   with per-request deadlines, graceful drain on shutdown.
//! - **Client** ([`client`]): the blocking client the load generator, the
//!   tests and CI use.
//!
//! Responses are bit-identical to a standalone `EvalSession` evaluating the
//! same spec — at any worker count, in any request order — because
//! everything request-dependent lives in the per-request
//! `ApproximateMemory` and the session core is probe-invariant.

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod shard;

pub use client::Client;
pub use json::Json;
pub use server::{serve, ServeConfig, ServerHandle};
pub use shard::{SessionPool, ShardKey};
