//! The eden-serve daemon binary.
//!
//! ```text
//! eden-serve --socket /tmp/eden-serve.sock --workers 8 --sessions 8
//! ```
//!
//! Prints `listening on <socket>` once ready; runs until a client sends a
//! `shutdown` request. Invalid flags exit non-zero — the daemon never falls
//! back to a default for a value the operator typed wrongly.

use std::path::PathBuf;
use std::time::Duration;

use eden_serve::{serve, ServeConfig};

fn fatal(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
        if arg == flag {
            match args.get(i + 1) {
                Some(v) => return Some(v.clone()),
                None => fatal(&format!("{flag} requires a value")),
            }
        }
    }
    None
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    flag_value(args, flag).map(|v| match v.parse::<T>() {
        Ok(value) => value,
        Err(_) => fatal(&format!("invalid value {v:?} for {flag}")),
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "eden-serve: sharded evaluation service on EvalSession\n\n\
             options:\n\
             \x20 --socket PATH       listen socket (default /tmp/eden-serve.sock)\n\
             \x20 --workers N         evaluation pool threads (default: all cores)\n\
             \x20 --sessions N        max live session shards before LRU eviction (default 8)\n\
             \x20 --inflight N        max evaluations in flight (default 2x workers)\n\
             \x20 --timeout-ms N      per-request deadline cap (default 30000)\n\
             \x20 --zoo-epochs N      training epochs for zoo models (default 2)\n\
             \x20 --zoo-seed N        training seed for zoo models (default 3)"
        );
        return;
    }
    let mut config = ServeConfig::default();
    if let Some(path) = flag_value(&args, "--socket") {
        config.socket = PathBuf::from(path);
    }
    if let Some(workers) = parse_flag::<usize>(&args, "--workers") {
        if workers == 0 {
            fatal("--workers must be at least 1");
        }
        config.workers = workers;
        config.max_inflight = (workers * 2).max(4);
    }
    if let Some(sessions) = parse_flag::<usize>(&args, "--sessions") {
        if sessions == 0 {
            fatal("--sessions must be at least 1");
        }
        config.max_sessions = sessions;
    }
    if let Some(inflight) = parse_flag::<usize>(&args, "--inflight") {
        if inflight == 0 {
            fatal("--inflight must be at least 1");
        }
        config.max_inflight = inflight;
    }
    if let Some(ms) = parse_flag::<u64>(&args, "--timeout-ms") {
        config.request_timeout = Duration::from_millis(ms);
    }
    if let Some(epochs) = parse_flag::<usize>(&args, "--zoo-epochs") {
        config.zoo_epochs = epochs;
    }
    if let Some(seed) = parse_flag::<u64>(&args, "--zoo-seed") {
        config.zoo_seed = seed;
    }
    for arg in &args {
        let known = [
            "--socket",
            "--workers",
            "--sessions",
            "--inflight",
            "--timeout-ms",
            "--zoo-epochs",
            "--zoo-seed",
        ];
        if arg.starts_with("--")
            && !known
                .iter()
                .any(|k| arg == k || arg.starts_with(&format!("{k}=")))
        {
            fatal(&format!("unknown flag {arg}"));
        }
    }

    let handle = match serve(config) {
        Ok(handle) => handle,
        Err(e) => fatal(&format!("failed to start: {e}")),
    };
    println!("listening on {}", handle.socket().display());
    // Run until a client requests shutdown; wait() drains connections.
    handle.wait();
    println!("shut down");
}
