//! A minimal JSON value type with a parser and writer.
//!
//! The workspace's `serde` is an offline marker shim (see `shims/README.md`),
//! so the service protocol carries its own small JSON implementation: enough
//! of RFC 8259 for the request/response objects `eden-serve` exchanges —
//! objects, arrays, strings with escapes, f64 numbers, booleans and null.
//! When real serde becomes available the [`Json`] type is the only seam to
//! replace.
//!
//! The writer never emits invalid JSON: non-finite numbers serialize as
//! `null` (the protocol layer maps the NaN accuracy sentinel to a structured
//! error *before* serialization, so a non-finite number reaching the writer
//! is already a bug — `debug_assert`ed accordingly).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) so serialization is
    /// deterministic — useful for tests and for diffing wire logs.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value.
    pub fn num(x: f64) -> Json {
        Json::Num(x)
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// This value as a non-negative integer, if it is a whole number that
    /// fits exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (the whole input must be one value).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    debug_assert!(false, "non-finite number reached the JSON writer");
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
            .and_then(|x| {
                if x.is_finite() {
                    Ok(Json::Num(x))
                } else {
                    Err(format!("non-finite number {text:?} at byte {start}"))
                }
            })
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                            // Surrogate pairs are not needed by this protocol;
                            // reject them instead of decoding them wrongly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("unpaired surrogate \\u{hex}"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("invalid escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' in array, found {:?}",
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' in object, found {:?}",
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shaped_documents() {
        let doc = r#"{"op":"eval","model":"lenet","ber":1e-3,"bers":[0.1,0.01],"ok":true,"note":"a\"b\\c","none":null}"#;
        let parsed = Json::parse(doc).unwrap();
        assert_eq!(parsed.get("op").and_then(Json::as_str), Some("eval"));
        assert_eq!(parsed.get("ber").and_then(Json::as_f64), Some(1e-3));
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(parsed.get("bers").and_then(Json::as_arr).unwrap().len(), 2);
        assert_eq!(parsed.get("none"), Some(&Json::Null));
        assert_eq!(parsed.get("note").and_then(Json::as_str), Some("a\"b\\c"));
        // Serialize → reparse is the identity.
        let reparsed = Json::parse(&parsed.to_string()).unwrap();
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":Infinity}",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn as_u64_accepts_only_exact_whole_numbers() {
        assert_eq!(Json::Num(16.0).as_u64(), Some(16));
        assert_eq!(Json::Num(0.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn strings_escape_control_characters() {
        let s = Json::str("line\nbreak\ttab \"quote\"").to_string();
        assert_eq!(s, r#""line\nbreak\ttab \"quote\"""#);
        assert_eq!(
            Json::parse(&s).unwrap().as_str(),
            Some("line\nbreak\ttab \"quote\"")
        );
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(Json::parse(r#""éA""#).unwrap(), Json::str("éA"));
    }
}
