//! Concurrent-session correctness: the service boundary preserves the
//! `EvalSession`/`ApproximateMemory` determinism contract.
//!
//! Every accuracy a server returns must be bit-identical to a fresh
//! standalone `EvalSession` evaluating the same spec — regardless of the
//! server's worker count, of which requests shared the shard first, and of
//! LRU evictions in between.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use eden_core::faults::ApproximateMemory;
use eden_core::inference::InferenceBackend;
use eden_core::session::EvalSession;
use eden_dnn::zoo::{ModelId, ModelZoo};
use eden_dnn::Dataset as _;
use eden_dram::ErrorModel;
use eden_serve::{serve, Client, Json, ServeConfig};
use eden_tensor::Precision;

const ZOO_EPOCHS: usize = 1;
const ZOO_SEED: u64 = 3;
const COUNT: usize = 8;
const MEM_SEED: u64 = 11;

fn socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("eden-serve-test-{}-{tag}.sock", std::process::id()))
}

fn config(tag: &str, workers: usize) -> ServeConfig {
    ServeConfig {
        socket: socket(tag),
        max_sessions: 4,
        max_inflight: 8,
        workers,
        request_timeout: Duration::from_secs(60),
        zoo_epochs: ZOO_EPOCHS,
        zoo_seed: ZOO_SEED,
    }
}

fn eval_request(precision: &str, ber: f64) -> Json {
    Json::obj([
        ("op", Json::str("eval")),
        ("model", Json::str("lenet")),
        ("precision", Json::str(precision)),
        (
            "error_model",
            Json::obj([("kind", Json::str("uniform")), ("seed", Json::num(5.0))]),
        ),
        ("ber", Json::num(ber)),
        ("count", Json::num(COUNT as f64)),
        ("seed", Json::num(MEM_SEED as f64)),
    ])
}

/// The ground truth: a fresh standalone session over the same zoo config.
fn standalone(precision: Precision, ber: f64) -> f32 {
    let zoo = ModelZoo::new(ZOO_EPOCHS, ZOO_SEED);
    let entry = zoo.get(ModelId::LeNet);
    let mut session = EvalSession::new_shared(entry.net, precision, InferenceBackend::default());
    let template = ErrorModel::uniform(0.02, 0.5, 5);
    let mut memory = ApproximateMemory::from_model(template.with_ber(ber), MEM_SEED);
    session.evaluate_with_faults(&entry.dataset.test()[..COUNT], &mut memory)
}

fn accuracy(response: &Json) -> f32 {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {response}"
    );
    response.get("accuracy").and_then(Json::as_f64).unwrap() as f32
}

#[test]
fn two_clients_share_a_shard_and_agree() {
    let server = serve(config("two-clients", 2)).unwrap();
    let path = server.socket().clone();
    let request = Arc::new(eval_request("int8", 1e-3));
    let threads: Vec<_> = (0..2)
        .map(|_| {
            let path = path.clone();
            let request = request.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect_with_retry(&path, Duration::from_secs(5)).unwrap();
                accuracy(&client.request(&request).unwrap())
            })
        })
        .collect();
    let results: Vec<f32> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert_eq!(results[0].to_bits(), results[1].to_bits());
    assert_eq!(
        results[0].to_bits(),
        standalone(Precision::Int8, 1e-3).to_bits()
    );

    let mut client = Client::connect(&path).unwrap();
    let stats = client.stats().unwrap();
    let shards = stats.get("shards").unwrap();
    // Both clients asked for the same key: one build, at least one hit.
    assert_eq!(shards.get("misses").and_then(Json::as_u64), Some(1));
    assert!(shards.get("hits").and_then(Json::as_u64).unwrap() >= 1);
    assert_eq!(stats.get("models_built").and_then(Json::as_u64), Some(1));
    server.join();
}

#[test]
fn serve_matches_standalone_at_any_worker_count() {
    let cases = [
        (Precision::Int8, "int8", 1e-3),
        (Precision::Int4, "int4", 1e-2),
    ];
    let expected: Vec<u32> = cases
        .iter()
        .map(|&(p, _, ber)| standalone(p, ber).to_bits())
        .collect();
    for workers in [1usize, 2, 8] {
        let server = serve(config(&format!("workers-{workers}"), workers)).unwrap();
        let mut client =
            Client::connect_with_retry(server.socket(), Duration::from_secs(5)).unwrap();
        for (&(_, name, ber), &want) in cases.iter().zip(&expected) {
            let got = accuracy(&client.request(&eval_request(name, ber)).unwrap());
            assert_eq!(
                got.to_bits(),
                want,
                "{name} ber={ber} differs at {workers} workers"
            );
        }
        server.join();
    }
}

#[test]
fn eviction_keeps_results_correct() {
    let mut cfg = config("eviction", 2);
    cfg.max_sessions = 1; // every precision switch evicts the other shard
    let server = serve(cfg).unwrap();
    let mut client = Client::connect_with_retry(server.socket(), Duration::from_secs(5)).unwrap();
    let int8 = standalone(Precision::Int8, 1e-3).to_bits();
    let int4 = standalone(Precision::Int4, 1e-3).to_bits();
    for _ in 0..2 {
        let a = accuracy(&client.request(&eval_request("int8", 1e-3)).unwrap());
        let b = accuracy(&client.request(&eval_request("int4", 1e-3)).unwrap());
        assert_eq!(a.to_bits(), int8);
        assert_eq!(b.to_bits(), int4);
    }
    let stats = client.stats().unwrap();
    let shards = stats.get("shards").unwrap();
    assert!(shards.get("evictions").and_then(Json::as_u64).unwrap() >= 3);
    assert_eq!(shards.get("live").and_then(Json::as_u64), Some(1));
    // One trained network serves every shard generation.
    assert_eq!(stats.get("models_built").and_then(Json::as_u64), Some(1));
    server.join();
}

#[test]
fn invalid_requests_get_structured_errors() {
    let server = serve(config("invalid", 1)).unwrap();
    let mut client = Client::connect_with_retry(server.socket(), Duration::from_secs(5)).unwrap();
    let cases: Vec<(Json, &str)> = vec![
        (Json::obj([("op", Json::str("evla"))]), "unknown op"),
        (
            {
                let mut r = eval_request("int8", 1e-3);
                if let Json::Obj(map) = &mut r {
                    map.insert("model".to_string(), Json::str("resnet9000"));
                }
                r
            },
            "unknown model",
        ),
        (
            {
                let mut r = eval_request("int8", 1e-3);
                if let Json::Obj(map) = &mut r {
                    map.insert("backend".to_string(), Json::str("ntaive"));
                }
                r
            },
            "typo'd backend",
        ),
        (
            {
                let mut r = eval_request("int8", 1e-3);
                if let Json::Obj(map) = &mut r {
                    map.insert("start".to_string(), Json::num(1e9));
                }
                r
            },
            "out-of-range samples",
        ),
    ];
    for (request, what) in cases {
        let response = client.request(&request).unwrap();
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(false),
            "{what} must fail: {response}"
        );
        assert!(response.get("error").and_then(Json::as_str).is_some());
    }

    // The empty-sample NaN sentinel becomes a structured error, never a
    // non-finite number in a JSON frame.
    let mut empty = eval_request("int8", 1e-3);
    if let Json::Obj(map) = &mut empty {
        map.insert("count".to_string(), Json::num(0.0));
    }
    let response = client.request(&empty).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    let message = response.get("error").and_then(Json::as_str).unwrap();
    assert!(message.contains("empty sample"), "{message}");
    server.join();
}

#[test]
fn eval_batch_matches_eval_and_reports_group_counters() {
    let server = serve(config("eval-batch", 2)).unwrap();
    let mut client = Client::connect_with_retry(server.socket(), Duration::from_secs(5)).unwrap();
    let plain = accuracy(&client.request(&eval_request("int8", 1e-3)).unwrap());
    for batch in [1u64, 3, 32] {
        let mut request = eval_request("int8", 1e-3);
        if let Json::Obj(map) = &mut request {
            map.insert("op".to_string(), Json::str("eval-batch"));
            map.insert("batch".to_string(), Json::num(batch as f64));
        }
        let batched = accuracy(&client.request(&request).unwrap());
        // Bit-identical at any cap — batching is a pure throughput knob.
        assert_eq!(batched.to_bits(), plain.to_bits(), "batch={batch}");
    }
    let stats = client.stats().unwrap();
    let batches = stats.get("batches").unwrap();
    // The cap-3 and cap-32 requests (and the default-cap plain eval) formed
    // multi-sample groups; the cap-1 request fell back sample by sample.
    assert!(batches.get("groups").and_then(Json::as_u64).unwrap() > 0);
    assert!(
        batches
            .get("samples_batched")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    assert!(
        batches
            .get("fallback_samples")
            .and_then(Json::as_u64)
            .unwrap()
            >= COUNT as u64
    );
    server.join();
}

#[test]
fn sweeps_stream_points_that_match_single_evals() {
    let server = serve(config("sweep", 2)).unwrap();
    let mut client = Client::connect_with_retry(server.socket(), Duration::from_secs(5)).unwrap();
    let bers = [1e-4, 1e-3, 1e-2];
    let request = Json::obj([
        ("op", Json::str("sweep")),
        ("model", Json::str("lenet")),
        ("precision", Json::str("int8")),
        (
            "error_model",
            Json::obj([("kind", Json::str("uniform")), ("seed", Json::num(5.0))]),
        ),
        (
            "bers",
            Json::Arr(bers.iter().map(|&b| Json::num(b)).collect()),
        ),
        ("count", Json::num(COUNT as f64)),
        ("seed", Json::num(MEM_SEED as f64)),
    ]);
    let mut points: Vec<(f64, f32)> = Vec::new();
    let done = client
        .sweep(&request, |point| {
            points.push((
                point.get("ber").and_then(Json::as_f64).unwrap(),
                point.get("accuracy").and_then(Json::as_f64).unwrap() as f32,
            ));
        })
        .unwrap();
    assert_eq!(done.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(done.get("points").and_then(Json::as_u64), Some(3));
    assert_eq!(points.len(), 3);
    for (&ber, &(got_ber, got)) in bers.iter().zip(&points) {
        assert_eq!(ber, got_ber);
        // A sweep point is the same operating point as a single eval.
        let single = accuracy(&client.request(&eval_request("int8", ber)).unwrap());
        assert_eq!(got.to_bits(), single.to_bits());
        assert_eq!(got.to_bits(), standalone(Precision::Int8, ber).to_bits());
    }
    server.join();
}
