//! Vendor-specific bit-error-rate behaviour of approximate DRAM.
//!
//! The paper characterizes real DDR3/DDR4 modules from three major vendors
//! (Figure 5) and finds that the bit error rate (BER) grows as supply voltage
//! and `tRCD` are reduced, with vendor-to-vendor variation and a dependence on
//! the stored data pattern (1→0 flips dominate under voltage scaling, 0→1
//! flips under `tRCD` scaling). This module encodes those observations as
//! per-vendor BER curves; the curves for vendor A are calibrated so that the
//! BER ↔ (ΔVDD, ΔtRCD) correspondence of Table 3 is reproduced.

use crate::params::OperatingPoint;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the three DRAM vendors characterized by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// Vendor A (the reference vendor used for Table 3 and the mapping
    /// experiments).
    A,
    /// Vendor B: fails earlier (higher BER at the same reduction).
    B,
    /// Vendor C: has more guardband (lower BER at the same reduction).
    C,
}

impl Vendor {
    /// All vendors.
    pub fn all() -> [Vendor; 3] {
        [Vendor::A, Vendor::B, Vendor::C]
    }

    /// The vendor's BER profile.
    pub fn profile(self) -> VendorProfile {
        VendorProfile::new(self)
    }

    /// Scale applied to the reduction axis: vendor B reaches the same BER
    /// with a smaller reduction, vendor C needs a larger one.
    fn reduction_scale(self) -> f32 {
        match self {
            Vendor::A => 1.0,
            Vendor::B => 0.82,
            Vendor::C => 1.18,
        }
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vendor::A => f.write_str("Vendor A"),
            Vendor::B => f.write_str("Vendor B"),
            Vendor::C => f.write_str("Vendor C"),
        }
    }
}

/// Control points of vendor A's BER-vs-ΔVDD curve, calibrated to Table 3.
const VOLTAGE_CURVE: &[(f32, f64)] = &[
    (0.00, 1e-9),
    (0.05, 1e-6),
    (0.10, 5.0e-3),
    (0.15, 6.5e-3),
    (0.20, 8.0e-3),
    (0.25, 9.5e-3),
    (0.30, 2.8e-2),
    (0.35, 4.5e-2),
    (0.40, 9.0e-2),
    (0.50, 2.5e-1),
    (0.60, 5.0e-1),
];

/// Control points of vendor A's BER-vs-ΔtRCD curve, calibrated to Table 3.
const TRCD_CURVE: &[(f32, f64)] = &[
    (0.0, 1e-9),
    (0.5, 1e-6),
    (1.0, 5.0e-3),
    (2.0, 1.2e-2),
    (2.5, 1.8e-2),
    (3.0, 2.0e-2),
    (4.0, 2.5e-2),
    (4.5, 2.8e-2),
    (5.0, 3.3e-2),
    (5.5, 3.8e-2),
    (6.0, 4.8e-2),
    (6.5, 7.0e-2),
    (8.0, 1.5e-1),
    (10.0, 4.5e-1),
];

/// BER behaviour of one vendor's DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VendorProfile {
    vendor: Vendor,
    /// Probability that a weak cell fails on any given access (the `F`
    /// parameter of the paper's error models).
    pub weak_cell_flip_prob: f64,
    /// Relative flip probability of cells storing `1` vs `0` under voltage
    /// scaling (1→0 flips dominate, so this is > 1).
    pub voltage_one_bias: f64,
    /// Relative flip probability of cells storing `0` vs `1` under tRCD
    /// scaling (0→1 flips dominate, so this is > 1).
    pub trcd_zero_bias: f64,
}

impl VendorProfile {
    /// Creates the profile for a vendor.
    pub fn new(vendor: Vendor) -> Self {
        let (flip, v_bias, t_bias) = match vendor {
            Vendor::A => (0.35, 1.6, 1.6),
            Vendor::B => (0.45, 1.8, 1.4),
            Vendor::C => (0.30, 1.4, 1.8),
        };
        Self {
            vendor,
            weak_cell_flip_prob: flip,
            voltage_one_bias: v_bias,
            trcd_zero_bias: t_bias,
        }
    }

    /// The vendor.
    pub fn vendor(&self) -> Vendor {
        self.vendor
    }

    /// BER contributed by voltage reduction alone, averaged over data values.
    pub fn ber_voltage(&self, vdd_reduction: f32) -> f64 {
        interpolate(VOLTAGE_CURVE, vdd_reduction / self.vendor.reduction_scale())
    }

    /// BER contributed by tRCD reduction alone, averaged over data values.
    pub fn ber_trcd(&self, trcd_reduction_ns: f32) -> f64 {
        interpolate(
            TRCD_CURVE,
            trcd_reduction_ns / self.vendor.reduction_scale(),
        )
    }

    /// Total average BER at an operating point (both mechanisms combined).
    pub fn ber(&self, op: &OperatingPoint) -> f64 {
        let v = self.ber_voltage(op.vdd_reduction());
        let t = self.ber_trcd(op.trcd_reduction_ns());
        1.0 - (1.0 - v) * (1.0 - t)
    }

    /// BER at an operating point for a cell storing the given bit value.
    ///
    /// 1→0 flips are more probable under voltage scaling and 0→1 flips under
    /// tRCD scaling (Figure 5 / Error Model 3), so the per-value BER deviates
    /// from the average while preserving it for 50/50 data.
    pub fn ber_for_stored(&self, op: &OperatingPoint, stored_one: bool) -> f64 {
        let v = self.ber_voltage(op.vdd_reduction());
        let t = self.ber_trcd(op.trcd_reduction_ns());
        let (v_w, t_w) = if stored_one {
            (
                2.0 * self.voltage_one_bias / (1.0 + self.voltage_one_bias),
                2.0 / (1.0 + self.trcd_zero_bias),
            )
        } else {
            (
                2.0 / (1.0 + self.voltage_one_bias),
                2.0 * self.trcd_zero_bias / (1.0 + self.trcd_zero_bias),
            )
        };
        let v = (v * v_w).min(1.0);
        let t = (t * t_w).min(1.0);
        1.0 - (1.0 - v) * (1.0 - t)
    }

    /// BER for a repeating byte data pattern (e.g. `0xFF`, `0xAA`, `0x00`),
    /// as used in the Figure 5 characterization.
    pub fn ber_for_pattern(&self, op: &OperatingPoint, pattern: u8) -> f64 {
        let ones = pattern.count_ones() as f64 / 8.0;
        ones * self.ber_for_stored(op, true) + (1.0 - ones) * self.ber_for_stored(op, false)
    }
}

/// Piecewise log-linear interpolation of a BER curve over a reduction axis.
fn interpolate(curve: &[(f32, f64)], x: f32) -> f64 {
    if x <= curve[0].0 {
        return curve[0].1;
    }
    if x >= curve[curve.len() - 1].0 {
        return curve[curve.len() - 1].1;
    }
    for w in curve.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x >= x0 && x <= x1 {
            let t = ((x - x0) / (x1 - x0)) as f64;
            let ln = y0.ln() + t * (y1.ln() - y0.ln());
            return ln.exp();
        }
    }
    curve[curve.len() - 1].1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::OperatingPoint;

    #[test]
    fn ber_is_monotonic_in_reductions() {
        let p = Vendor::A.profile();
        let mut prev = 0.0;
        for step in 0..=40 {
            let dv = step as f32 * 0.015;
            let b = p.ber_voltage(dv);
            assert!(b >= prev, "voltage BER not monotonic at Δ{dv}");
            prev = b;
        }
        prev = 0.0;
        for step in 0..=40 {
            let dt = step as f32 * 0.25;
            let b = p.ber_trcd(dt);
            assert!(b >= prev, "tRCD BER not monotonic at Δ{dt}");
            prev = b;
        }
    }

    #[test]
    fn nominal_operation_is_essentially_error_free() {
        for v in Vendor::all() {
            let b = v.profile().ber(&OperatingPoint::nominal());
            assert!(b < 1e-8, "{v}: nominal BER {b} too high");
        }
    }

    #[test]
    fn table3_calibration_points_hold_for_vendor_a() {
        let p = Vendor::A.profile();
        // −0.10 V must stay within a 0.5% BER budget, −0.30 V within ~3–4%.
        assert!(p.ber_voltage(0.10) <= 0.005 + 1e-9);
        assert!(p.ber_voltage(0.30) <= 0.04);
        assert!(p.ber_voltage(0.30) > 0.015);
        assert!(p.ber_voltage(0.35) <= 0.05);
        // tRCD: −5.5 ns within 4%, −6.0 ns within 5%.
        assert!(p.ber_trcd(5.5) <= 0.04);
        assert!(p.ber_trcd(6.0) <= 0.05);
        assert!(p.ber_trcd(6.5) > 0.05);
    }

    #[test]
    fn vendor_b_fails_earlier_than_vendor_c() {
        let op = OperatingPoint::with_vdd_reduction(0.25);
        let b = Vendor::B.profile().ber(&op);
        let c = Vendor::C.profile().ber(&op);
        assert!(b > c, "vendor B ({b}) should have more errors than C ({c})");
    }

    #[test]
    fn data_pattern_dependence_matches_figure5() {
        // Under voltage scaling, all-ones (0xFF) fails more than all-zeros.
        let p = Vendor::A.profile();
        let op_v = OperatingPoint::with_vdd_reduction(0.3);
        assert!(p.ber_for_pattern(&op_v, 0xFF) > p.ber_for_pattern(&op_v, 0x00));
        // Under tRCD scaling the order is reversed.
        let op_t = OperatingPoint::with_trcd_reduction(5.0);
        assert!(p.ber_for_pattern(&op_t, 0x00) > p.ber_for_pattern(&op_t, 0xFF));
        // Mixed patterns fall in between.
        let hi = p.ber_for_pattern(&op_v, 0xFF);
        let lo = p.ber_for_pattern(&op_v, 0x00);
        let mid = p.ber_for_pattern(&op_v, 0xAA);
        assert!(mid <= hi && mid >= lo);
    }

    #[test]
    fn average_of_stored_bers_matches_overall_ber() {
        let p = Vendor::A.profile();
        let op = OperatingPoint::with_vdd_reduction(0.3);
        let avg = 0.5 * p.ber_for_stored(&op, true) + 0.5 * p.ber_for_stored(&op, false);
        let overall = p.ber(&op);
        assert!(
            (avg - overall).abs() / overall < 0.05,
            "avg {avg} vs overall {overall}"
        );
    }

    #[test]
    fn combined_reductions_have_higher_ber_than_either_alone() {
        let p = Vendor::A.profile();
        let both = p.ber(&OperatingPoint::with_reductions(0.25, 4.0));
        let v_only = p.ber(&OperatingPoint::with_vdd_reduction(0.25));
        let t_only = p.ber(&OperatingPoint::with_trcd_reduction(4.0));
        assert!(both > v_only && both > t_only);
    }
}
