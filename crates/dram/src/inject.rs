//! Error injection sources shared by retraining and inference.
//!
//! An [`Injector`] corrupts stored tensors either through a fitted
//! probabilistic [`ErrorModel`] (the fast path used for EDEN "offloading",
//! Section 4) or through the simulated [`ApproxDramDevice`] itself (the
//! "real device" path used for validation, Section 6.2). An
//! [`AddressAllocator`] hands out non-overlapping DRAM placements so that
//! different DNN data types occupy different rows, as they would in a real
//! module.

use crate::device::ApproxDramDevice;
use crate::error_model::{ErrorModel, Layout, WeakCellMap};
use crate::geometry::Partition;
use crate::params::OperatingPoint;
use eden_tensor::{CorruptionOverlay, QuantTensor};
use rand::rngs::StdRng;

/// Where injected errors come from.
#[derive(Debug, Clone)]
pub enum Injector {
    /// A probabilistic error model (Error Models 0–3).
    Model {
        /// The error model.
        model: ErrorModel,
        /// Data layout used to place tensor bits on rows/bitlines.
        layout: Layout,
    },
    /// The simulated approximate DRAM device read at a given operating point.
    Device {
        /// The device.
        device: ApproxDramDevice,
        /// Partition holding the data.
        partition: Partition,
        /// Operating point of the partition.
        op: OperatingPoint,
    },
}

impl Injector {
    /// Creates an injector backed by an error model.
    pub fn from_model(model: ErrorModel, layout: Layout) -> Self {
        Injector::Model { model, layout }
    }

    /// Creates an injector backed by the simulated device.
    pub fn from_device(device: ApproxDramDevice, partition: Partition, op: OperatingPoint) -> Self {
        Injector::Device {
            device,
            partition,
            op,
        }
    }

    /// Expected bit error rate of this injector.
    pub fn expected_ber(&self) -> f64 {
        match self {
            Injector::Model { model, .. } => model.expected_ber(),
            Injector::Device { device, op, .. } => device.expected_ber(op),
        }
    }

    /// Whether this injector can be proven never to flip a bit.
    ///
    /// An expected BER of exactly 0 implies a weak-cell probability of 0
    /// under every error source: a rescaled model draws no weak cells, and a
    /// device whose vendor curve reports 0 for the operating point marks no
    /// cell weak (`base_p = 0` ⇒ every spatially-scaled probability is 0).
    /// Such an injector is an exact no-op on every load — the property the
    /// incremental-evaluation layer uses to decide that a data site cannot
    /// dirty the forward pass. The converse does not hold: a *negligible*
    /// but nonzero BER is treated as dirty.
    pub fn is_provably_clean(&self) -> bool {
        self.expected_ber() == 0.0
    }

    /// Corrupts a stored tensor in place; returns the number of flipped bits.
    pub fn corrupt(&self, tensor: &mut QuantTensor, rng: &mut StdRng) -> u64 {
        match self {
            Injector::Model { model, layout } => model.inject(tensor, layout, rng),
            Injector::Device {
                device,
                partition,
                op,
            } => device.read_tensor(tensor, partition, op, rng),
        }
    }

    /// Corrupts a stored tensor placed according to `layout`, drawing all
    /// per-access failures from RNG streams derived from `stream_seed`.
    ///
    /// Unlike [`Injector::corrupt_placed`] this never consumes from a shared
    /// RNG, so concurrent corruptions of different tensors cannot perturb
    /// each other: the flip set is a pure function of
    /// `(injector, layout, stored bits, stream_seed)` and is bit-identical
    /// for any thread count. The injection itself runs chunk-parallel on the
    /// current `eden-par` pool.
    pub fn corrupt_placed_seeded(
        &self,
        tensor: &mut QuantTensor,
        layout: &Layout,
        stream_seed: u64,
    ) -> u64 {
        self.corrupt_placed_seeded_mapped(tensor, layout, stream_seed, None)
    }

    /// [`Injector::corrupt_placed_seeded`] with an optional precomputed
    /// [`WeakCellMap`] for the placement. With a map, a model-backed injector
    /// skips the per-bit weak-cell scan and touches only the weak cells —
    /// bit-identical flips at a fraction of the cost (see
    /// [`ErrorModel::inject_seeded_mapped`]). Without one (or for a
    /// device-backed injector, whose failures are resampled per read) it
    /// falls back to the full scan.
    pub fn corrupt_placed_seeded_mapped(
        &self,
        tensor: &mut QuantTensor,
        layout: &Layout,
        stream_seed: u64,
        map: Option<&WeakCellMap>,
    ) -> u64 {
        // Fast path: an error-free source (a model rescaled to BER 0, a
        // device at its nominal operating point) can never flip a bit — skip
        // RNG stream construction and leave the tensor untouched. An expected
        // BER of 0 implies a weak-cell probability of 0 under every source,
        // so no draw could succeed anyway; skipping the draws is exact
        // because every load derives its streams from `stream_seed` alone.
        // (Every seeded entry point funnels through here, so the production
        // hook path benefits too; an empty weak map additionally
        // early-returns inside `inject_seeded_mapped`.)
        if self.expected_ber() == 0.0 {
            return 0;
        }
        match (self, map) {
            (Injector::Model { model, .. }, Some(map)) => {
                model.inject_seeded_mapped(tensor, stream_seed, map)
            }
            _ => self.corrupt_placed_seeded_scan(tensor, layout, stream_seed),
        }
    }

    /// The sparse-overlay form of [`Injector::corrupt_placed_seeded_mapped`]:
    /// computes the [`CorruptionOverlay`] the corruption would produce on
    /// `clean` instead of mutating it, with identical RNG stream consumption
    /// (applying the overlay to `clean` is bit-identical to corrupting it).
    ///
    /// A model-backed injector with a precomputed map produces the overlay
    /// in O(weak cells) ([`ErrorModel::overlay_seeded_mapped`]); without a
    /// map it scans the placement first. A device-backed injector has no
    /// precomputable weak map (its failures are resampled per read under
    /// data-dependent direction preferences), so its overlay is derived by
    /// diffing a corrupted copy — O(total bits) to *produce*, like every
    /// device read, but still O(flips) for consumers to apply and revert.
    pub fn overlay_placed_seeded(
        &self,
        clean: &QuantTensor,
        layout: &Layout,
        stream_seed: u64,
        map: Option<&WeakCellMap>,
    ) -> CorruptionOverlay {
        match (self, map) {
            (Injector::Model { model, .. }, Some(map)) => {
                model.overlay_seeded_mapped(clean, stream_seed, map)
            }
            (Injector::Model { model, .. }, None) => {
                model.overlay_seeded(clean, layout, stream_seed)
            }
            (
                Injector::Device {
                    device,
                    partition,
                    op,
                },
                _,
            ) => device.read_overlay_at_seeded(
                clean,
                partition,
                layout.base_row as u64,
                op,
                stream_seed,
            ),
        }
    }

    /// Precomputes the weak-cell map of a `values × bits` placement for a
    /// model-backed injector (`None` for device-backed injectors).
    pub fn weak_map(&self, values: usize, bits: u32, layout: &Layout) -> Option<WeakCellMap> {
        match self {
            Injector::Model { model, .. } => Some(model.weak_map(values, bits, layout)),
            Injector::Device { .. } => None,
        }
    }

    fn corrupt_placed_seeded_scan(
        &self,
        tensor: &mut QuantTensor,
        layout: &Layout,
        stream_seed: u64,
    ) -> u64 {
        match self {
            Injector::Model { model, .. } => model.inject_seeded(tensor, layout, stream_seed),
            Injector::Device {
                device,
                partition,
                op,
            } => device.read_tensor_at_seeded(
                tensor,
                partition,
                layout.base_row as u64,
                op,
                stream_seed,
            ),
        }
    }

    /// Corrupts a stored tensor placed according to `layout` (overriding the
    /// injector's own default placement). For a model injector the layout is
    /// used directly; for a device injector the layout's base row offsets the
    /// tensor within the device partition. This is what lets an allocator
    /// give each DNN data type its own DRAM rows under either error source.
    /// Placements are disjoint as long as the combined footprint fits the
    /// partition; past its capacity, rows wrap (see
    /// [`ApproxDramDevice::read_tensor_at`]) and later sites alias earlier
    /// ones, exactly as physical re-use of the partition would.
    pub fn corrupt_placed(
        &self,
        tensor: &mut QuantTensor,
        layout: &Layout,
        rng: &mut StdRng,
    ) -> u64 {
        match self {
            Injector::Model { model, .. } => model.inject(tensor, layout, rng),
            Injector::Device {
                device,
                partition,
                op,
            } => device.read_tensor_at(tensor, partition, layout.base_row as u64, op, rng),
        }
    }
}

/// Allocates consecutive, non-overlapping row ranges for DNN data types.
#[derive(Debug, Clone)]
pub struct AddressAllocator {
    row_bits: usize,
    next_row: usize,
}

impl AddressAllocator {
    /// Creates an allocator for rows of `row_bits` bits each.
    pub fn new(row_bits: usize) -> Self {
        Self {
            row_bits,
            next_row: 0,
        }
    }

    /// Allocates rows for a tensor of `total_bits` bits and returns the
    /// layout describing its placement.
    pub fn allocate(&mut self, total_bits: u64) -> Layout {
        let layout = Layout::new(self.row_bits, self.next_row);
        let rows = (total_bits as usize).div_ceil(self.row_bits).max(1);
        self.next_row += rows;
        layout
    }

    /// Number of rows handed out so far.
    pub fn rows_used(&self) -> usize {
        self.next_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{partitions, DramGeometry, PartitionGranularity};
    use crate::vendor::Vendor;
    use eden_tensor::{Precision, Tensor};
    use rand::SeedableRng;

    fn stored(n: usize) -> QuantTensor {
        QuantTensor::quantize(
            &Tensor::from_vec((0..n).map(|i| (i as f32 * 0.3).cos()).collect(), &[n]),
            Precision::Int8,
        )
    }

    #[test]
    fn model_injector_corrupts_at_expected_rate() {
        let inj = Injector::from_model(ErrorModel::uniform(0.01, 0.5, 1), Layout::default());
        let clean = stored(20_000);
        let mut t = clean.clone();
        let mut rng = StdRng::seed_from_u64(0);
        let flips = inj.corrupt(&mut t, &mut rng);
        let observed = flips as f64 / clean.total_bits() as f64;
        assert!((observed - inj.expected_ber()).abs() / inj.expected_ber() < 0.4);
    }

    #[test]
    fn device_injector_matches_device_behaviour() {
        let dev = ApproxDramDevice::new(Vendor::A, 3);
        let part = partitions(&DramGeometry::ddr4_module(), PartitionGranularity::Bank)[0];
        let op = OperatingPoint::with_vdd_reduction(0.30);
        let inj = Injector::from_device(dev, part, op);
        let mut t = stored(20_000);
        let mut rng = StdRng::seed_from_u64(1);
        let flips = inj.corrupt(&mut t, &mut rng);
        assert!(flips > 0);
        assert!((inj.expected_ber() - dev.expected_ber(&op)).abs() < 1e-12);
    }

    #[test]
    fn seeded_corruption_is_thread_count_invariant() {
        // The same stream seed must produce the same flip set whether the
        // chunks run on 1, 2 or 8 workers — and regardless of the chunk
        // execution order those pools produce.
        let clean = stored(3 * 4096 + 17); // straddles chunk boundaries
        for inj in [
            Injector::from_model(ErrorModel::uniform(0.01, 0.5, 7), Layout::default()),
            Injector::from_device(
                ApproxDramDevice::new(Vendor::B, 4),
                partitions(&DramGeometry::ddr4_module(), PartitionGranularity::Bank)[0],
                OperatingPoint::with_vdd_reduction(0.30),
            ),
        ] {
            let layout = Layout::new(1024, 3);
            let reference: Vec<(QuantTensor, u64)> = [1usize, 2, 8]
                .iter()
                .map(|&threads| {
                    eden_par::ThreadPool::new(threads).install(|| {
                        let mut t = clean.clone();
                        let flips = inj.corrupt_placed_seeded(&mut t, &layout, 99);
                        (t, flips)
                    })
                })
                .collect();
            assert!(reference[0].1 > 0, "injector must flip something");
            assert_eq!(reference[0], reference[1], "1 vs 2 threads");
            assert_eq!(reference[0], reference[2], "1 vs 8 threads");
        }
    }

    #[test]
    fn injector_overlay_matches_in_place_corruption() {
        // For both injector kinds (model with/without a precomputed map,
        // device by diff), the overlay applied to the clean image must equal
        // the in-place corruption bit for bit.
        let clean = stored(3 * 4096 + 17);
        let layout = Layout::new(1024, 3);
        for inj in [
            Injector::from_model(ErrorModel::uniform(0.01, 0.5, 7), Layout::default()),
            Injector::from_model(
                ErrorModel::data_dependent(0.02, 0.8, 0.1, 2),
                Layout::default(),
            ),
            Injector::from_device(
                ApproxDramDevice::new(Vendor::B, 4),
                partitions(&DramGeometry::ddr4_module(), PartitionGranularity::Bank)[0],
                OperatingPoint::with_vdd_reduction(0.30),
            ),
        ] {
            let map = inj.weak_map(clean.len(), clean.bits_per_value(), &layout);
            let mut corrupted = clean.clone();
            let flips = inj.corrupt_placed_seeded_mapped(&mut corrupted, &layout, 99, map.as_ref());
            assert!(flips > 0, "injector must flip something");
            let overlay = inj.overlay_placed_seeded(&clean, &layout, 99, map.as_ref());
            assert_eq!(overlay.bit_flips(), flips);
            let mut patched = clean.clone();
            overlay.apply(&mut patched);
            assert_eq!(patched, corrupted);
            overlay.revert(&mut patched);
            assert_eq!(patched, clean);
        }
    }

    #[test]
    fn error_free_injector_skips_corruption_without_stat_churn() {
        // The `corrupt_placed_seeded` fast path: a zero-BER source returns 0
        // flips and leaves the tensor untouched (no RNG streams constructed).
        let clean = stored(5_000);
        let layout = Layout::new(1024, 0);
        // A model rescaled to BER 0 takes the injector-level fast path…
        let zero_ber = Injector::from_model(
            ErrorModel::uniform(0.05, 0.5, 3).with_ber(0.0),
            Layout::default(),
        );
        assert_eq!(zero_ber.expected_ber(), 0.0);
        // …while a device at its nominal operating point (whose vendor curve
        // is merely *negligible*, not exactly zero) relies on the device's
        // own nominal-read early return. Both must be exact no-ops.
        let nominal = Injector::from_device(
            ApproxDramDevice::new(Vendor::A, 1),
            partitions(&DramGeometry::ddr4_module(), PartitionGranularity::Bank)[0],
            OperatingPoint::nominal(),
        );
        assert!(
            !Injector::from_model(ErrorModel::uniform(0.05, 0.5, 3), Layout::default())
                .is_provably_clean(),
            "a nonzero-BER model must not be provably clean"
        );
        for inj in [zero_ber, nominal] {
            assert_eq!(inj.is_provably_clean(), inj.expected_ber() == 0.0);
            let mut t = clean.clone();
            assert_eq!(inj.corrupt_placed_seeded(&mut t, &layout, 42), 0);
            assert_eq!(t, clean, "error-free injector must not touch the tensor");
            let overlay = inj.overlay_placed_seeded(&clean, &layout, 42, None);
            assert!(overlay.is_empty());
        }
    }

    #[test]
    fn allocator_hands_out_disjoint_rows() {
        let mut alloc = AddressAllocator::new(1024);
        let a = alloc.allocate(4096);
        let b = alloc.allocate(100);
        let c = alloc.allocate(3000);
        assert_eq!(a.base_row, 0);
        assert_eq!(b.base_row, 4); // 4096 bits / 1024 bits-per-row
        assert_eq!(c.base_row, 5);
        assert_eq!(alloc.rows_used(), 8);
    }

    #[test]
    fn tensors_at_different_addresses_see_different_weak_cells() {
        let model = ErrorModel::uniform(0.02, 1.0, 5);
        let mut alloc = AddressAllocator::new(2048);
        let clean = stored(2048);
        let la = alloc.allocate(clean.total_bits());
        let lb = alloc.allocate(clean.total_bits());
        let mut a = clean.clone();
        let mut b = clean.clone();
        let mut rng = StdRng::seed_from_u64(2);
        model.inject(&mut a, &la, &mut rng);
        model.inject(&mut b, &lb, &mut rng);
        // Same data, same model, different addresses → different flip sets.
        assert_ne!(a, b);
    }
}
