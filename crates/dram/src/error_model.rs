//! The four probabilistic DRAM error models of Section 4.
//!
//! * **Error Model 0** — bit errors uniformly distributed over a bank
//!   (parameters `P`, the fraction of weak cells, and `F_A`, the probability
//!   that a weak cell fails on an access).
//! * **Error Model 1** — errors concentrated on particular *bitlines*
//!   (per-bitline weak-cell fraction `P_B` and failure probability `F_B`).
//! * **Error Model 2** — errors concentrated on particular *wordlines*
//!   (per-wordline `P_W`, `F_W`).
//! * **Error Model 3** — data-dependent errors (`P`, `F_V1` for cells storing
//!   a one, `F_V0` for cells storing a zero).
//!
//! All models are deterministic in *which* cells are weak (derived from the
//! model seed and the cell address) and stochastic in whether a weak cell
//! fails on a particular access, mirroring how real weak cells behave.

use crate::util::{seed_mix, stream, unit_for};
use eden_tensor::{CorruptionOverlay, QuantTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Tensor values per independently-seeded injection chunk.
///
/// Injection splits every tensor into fixed chunks of this many values; each
/// chunk draws its per-access failures from its own RNG stream derived from
/// `(stream seed, chunk index)`. Because the chunk geometry and seeds never
/// depend on the thread count, corrupting the chunks in parallel is
/// bit-identical to corrupting them sequentially — EDEN's error models are
/// per-cell independent, so injection order must not matter.
pub const INJECT_CHUNK_VALUES: usize = 4096;

/// How data maps onto DRAM rows, used to give injected errors spatial
/// structure (which bitline / wordline a bit lands on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layout {
    /// Bits per DRAM row (default: a 2 KB row).
    pub row_bits: usize,
    /// Row offset at which the tensor starts (tensors placed at different
    /// addresses see different weak rows).
    pub base_row: usize,
}

impl Default for Layout {
    fn default() -> Self {
        Self {
            row_bits: 2048 * 8,
            base_row: 0,
        }
    }
}

impl Layout {
    /// Creates a layout with the given row width (bits) and base row.
    pub fn new(row_bits: usize, base_row: usize) -> Self {
        assert!(row_bits > 0, "row_bits must be positive");
        Self { row_bits, base_row }
    }

    /// Maps a linear bit offset to `(row, bitline)`.
    pub fn locate(&self, bit_offset: u64) -> (u64, u64) {
        (
            self.base_row as u64 + bit_offset / self.row_bits as u64,
            bit_offset % self.row_bits as u64,
        )
    }
}

/// Which of the paper's four error models this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorModelKind {
    /// Error Model 0: uniform random errors.
    Uniform,
    /// Error Model 1: bitline-correlated errors.
    Bitline,
    /// Error Model 2: wordline-correlated errors.
    Wordline,
    /// Error Model 3: data-dependent errors.
    DataDependent,
}

impl ErrorModelKind {
    /// All four model kinds, in paper order.
    pub fn all() -> [ErrorModelKind; 4] {
        [
            ErrorModelKind::Uniform,
            ErrorModelKind::Bitline,
            ErrorModelKind::Wordline,
            ErrorModelKind::DataDependent,
        ]
    }

    /// The paper's numbering (Error Model 0–3).
    pub fn index(self) -> usize {
        match self {
            ErrorModelKind::Uniform => 0,
            ErrorModelKind::Bitline => 1,
            ErrorModelKind::Wordline => 2,
            ErrorModelKind::DataDependent => 3,
        }
    }
}

impl fmt::Display for ErrorModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error Model {}", self.index())
    }
}

/// Fraction of bitlines/wordlines treated as "hot" (much weaker than average)
/// by the spatially-correlated models.
const HOT_LINE_FRACTION: f64 = 0.08;

/// One weak cell within an injection chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WeakCell {
    /// Value index relative to the chunk start.
    local_value: u32,
    /// Bit within the value (0 = LSB).
    bit: u8,
}

/// Precomputed weak-cell positions of one tensor placement (see
/// [`ErrorModel::weak_map`]): ascending bit positions grouped per
/// [`INJECT_CHUNK_VALUES`] chunk, so [`ErrorModel::inject_seeded_mapped`]
/// consumes each chunk's RNG stream exactly like the full scan.
#[derive(Debug, Clone, Default)]
pub struct WeakCellMap {
    chunks: Vec<Vec<WeakCell>>,
    values: usize,
    bits: u32,
    /// Cached total cell count, so the empty-map fast path of the injection
    /// entry points is O(1) instead of a per-load sum over chunks.
    total: usize,
}

impl WeakCellMap {
    /// Total number of weak cells in the placement.
    pub fn weak_cells(&self) -> usize {
        self.total
    }

    /// Whether the placement has no weak cells at all (e.g. a model rescaled
    /// to BER 0, or a placement that happens to dodge every weak line).
    /// Injection over an empty map is a no-op, and the entry points
    /// early-return without constructing any RNG stream.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// A parameterized, seedable DRAM error model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorModel {
    kind: ErrorModelKind,
    seed: u64,
    /// Fraction of weak cells (`P`, `P_B`, `P_W` depending on the model).
    weak_fraction: f64,
    /// Mean per-access failure probability of a weak cell.
    flip_prob: f64,
    /// Spatial concentration for Models 1/2 (0 = uniform, 1 = highly
    /// concentrated on a few lines).
    spread: f64,
    /// Failure probability for weak cells storing a one (Model 3).
    flip_prob_one: f64,
    /// Failure probability for weak cells storing a zero (Model 3).
    flip_prob_zero: f64,
}

impl ErrorModel {
    /// Error Model 0 with weak-cell fraction `p` and weak-cell failure
    /// probability `f`.
    pub fn uniform(p: f64, f: f64, seed: u64) -> Self {
        Self {
            kind: ErrorModelKind::Uniform,
            seed,
            weak_fraction: clamp_prob(p),
            flip_prob: clamp_prob(f),
            spread: 0.0,
            flip_prob_one: clamp_prob(f),
            flip_prob_zero: clamp_prob(f),
        }
    }

    /// Error Model 1 (bitline-correlated) with mean parameters `p`/`f` and a
    /// concentration `spread` in `[0, 1]`.
    pub fn bitline(p: f64, f: f64, spread: f64, seed: u64) -> Self {
        Self {
            kind: ErrorModelKind::Bitline,
            spread: spread.clamp(0.0, 1.0),
            ..Self::uniform(p, f, seed)
        }
    }

    /// Error Model 2 (wordline-correlated) with mean parameters `p`/`f` and a
    /// concentration `spread` in `[0, 1]`.
    pub fn wordline(p: f64, f: f64, spread: f64, seed: u64) -> Self {
        Self {
            kind: ErrorModelKind::Wordline,
            spread: spread.clamp(0.0, 1.0),
            ..Self::uniform(p, f, seed)
        }
    }

    /// Error Model 3 (data-dependent) with weak-cell fraction `p` and
    /// per-value failure probabilities `f_one` / `f_zero`.
    pub fn data_dependent(p: f64, f_one: f64, f_zero: f64, seed: u64) -> Self {
        Self {
            kind: ErrorModelKind::DataDependent,
            seed,
            weak_fraction: clamp_prob(p),
            flip_prob: clamp_prob(0.5 * (f_one + f_zero)),
            spread: 0.0,
            flip_prob_one: clamp_prob(f_one),
            flip_prob_zero: clamp_prob(f_zero),
        }
    }

    /// The model kind.
    pub fn kind(&self) -> ErrorModelKind {
        self.kind
    }

    /// The model seed (identifies the weak-cell map).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A stable 64-bit fingerprint of the model's complete parameter set.
    ///
    /// Two models with the same fingerprint have (up to hash collisions over
    /// a 64-bit space) identical weak-cell maps and failure probabilities,
    /// which lets evaluation-session caches key precomputed
    /// [`WeakCellMap`]s by `(model, placement, geometry)` and share them
    /// across probes of a characterization sweep.
    pub fn fingerprint(&self) -> u64 {
        let mut h = stream(0x5E55_10F1, self.kind.index() as u64);
        for field in [
            self.seed,
            self.weak_fraction.to_bits(),
            self.flip_prob.to_bits(),
            self.spread.to_bits(),
            self.flip_prob_one.to_bits(),
            self.flip_prob_zero.to_bits(),
        ] {
            h = stream(h, field);
        }
        h
    }

    /// The weak-cell fraction `P`.
    pub fn weak_fraction(&self) -> f64 {
        self.weak_fraction
    }

    /// The mean weak-cell failure probability.
    pub fn flip_prob(&self) -> f64 {
        self.flip_prob
    }

    /// Expected bit error rate over random 50/50 data.
    pub fn expected_ber(&self) -> f64 {
        match self.kind {
            ErrorModelKind::DataDependent => {
                self.weak_fraction * 0.5 * (self.flip_prob_one + self.flip_prob_zero)
            }
            _ => self.weak_fraction * self.flip_prob,
        }
    }

    /// Returns a copy of the model rescaled so that its expected BER equals
    /// `target_ber`, preserving the model's structure (spatial concentration,
    /// data-dependence ratio, weak-cell map).
    ///
    /// # Panics
    ///
    /// Panics if `target_ber` is not in `[0, 1]`.
    pub fn with_ber(&self, target_ber: f64) -> Self {
        assert!((0.0..=1.0).contains(&target_ber), "BER must be in [0,1]");
        let mut out = *self;
        if target_ber == 0.0 {
            out.weak_fraction = 0.0;
            return out;
        }
        // Keep the weak-cell failure probability shape, adjust the weak-cell
        // fraction; if that would exceed 1, saturate P and raise F instead.
        let mean_f = match self.kind {
            ErrorModelKind::DataDependent => 0.5 * (self.flip_prob_one + self.flip_prob_zero),
            _ => self.flip_prob,
        }
        .max(1e-12);
        let p = target_ber / mean_f;
        if p <= 1.0 {
            out.weak_fraction = p;
        } else {
            out.weak_fraction = 1.0;
            let scale = target_ber / mean_f;
            out.flip_prob = clamp_prob(self.flip_prob * scale);
            out.flip_prob_one = clamp_prob(self.flip_prob_one * scale);
            out.flip_prob_zero = clamp_prob(self.flip_prob_zero * scale);
        }
        out
    }

    /// Weakness multiplier of a bitline or wordline for the spatially
    /// correlated models: a small fraction of lines is much weaker than the
    /// rest, the others slightly stronger, with mean 1.
    fn line_factor(&self, line: u64, salt: u64) -> f64 {
        if self.spread == 0.0 {
            return 1.0;
        }
        let hot_factor = 1.0 + 9.0 * self.spread;
        let cold_factor =
            (1.0 - HOT_LINE_FRACTION * hot_factor).max(0.0) / (1.0 - HOT_LINE_FRACTION);
        let u = unit_for(self.seed ^ 0x11AE, line, salt, 0);
        if u < HOT_LINE_FRACTION {
            hot_factor
        } else {
            cold_factor
        }
    }

    /// Whether the cell at `(row, bitline)` is weak under this model.
    pub fn is_weak(&self, row: u64, bitline: u64) -> bool {
        let p = match self.kind {
            ErrorModelKind::Bitline => {
                (self.weak_fraction * self.line_factor(bitline, 0xB17)).min(1.0)
            }
            ErrorModelKind::Wordline => {
                (self.weak_fraction * self.line_factor(row, 0x40D)).min(1.0)
            }
            _ => self.weak_fraction,
        };
        unit_for(self.seed, row, bitline, 0xCE11) < p
    }

    /// Per-access failure probability of a weak cell at `(row, bitline)`
    /// storing `stored_one`.
    ///
    /// For the spatially-correlated models the *density* of weak cells varies
    /// per line (see [`ErrorModel::is_weak`]); the failure probability of a
    /// weak cell is uniform, which keeps the expected BER exactly `P × F`.
    pub fn weak_flip_prob(&self, _row: u64, _bitline: u64, stored_one: bool) -> f64 {
        match self.kind {
            ErrorModelKind::Uniform | ErrorModelKind::Bitline | ErrorModelKind::Wordline => {
                self.flip_prob
            }
            ErrorModelKind::DataDependent => {
                if stored_one {
                    self.flip_prob_one
                } else {
                    self.flip_prob_zero
                }
            }
        }
    }

    /// Injects bit errors into a stored tensor laid out according to
    /// `layout`, drawing per-access failures from `rng`.
    ///
    /// Returns the number of bits flipped. This is a convenience wrapper that
    /// draws one stream seed from `rng` and delegates to
    /// [`ErrorModel::inject_seeded`].
    pub fn inject(&self, tensor: &mut QuantTensor, layout: &Layout, rng: &mut StdRng) -> u64 {
        let stream_seed = rng.gen::<u64>();
        self.inject_seeded(tensor, layout, stream_seed)
    }

    /// Enumerates the weak cells of a `values × bits` tensor placed at
    /// `layout`: ascending bit positions, grouped by injection chunk so the
    /// per-chunk RNG streams of [`ErrorModel::inject_seeded`] are consumed
    /// in exactly the same order.
    ///
    /// Weak-cell membership depends only on the cell *address* (all four
    /// models derive it from the model seed and the row/bitline — never from
    /// the stored data), so the map can be computed once per placement and
    /// reused across every load of that site. That turns the per-load
    /// injection cost from O(total bits) hash evaluations into O(weak cells)
    /// RNG draws — a ~`1/P` speedup at the BERs the paper operates at.
    pub fn weak_map(&self, values: usize, bits: u32, layout: &Layout) -> WeakCellMap {
        let mut chunks = Vec::with_capacity(values.div_ceil(INJECT_CHUNK_VALUES));
        if self.weak_fraction > 0.0 {
            for chunk_start in (0..values).step_by(INJECT_CHUNK_VALUES) {
                let chunk_end = (chunk_start + INJECT_CHUNK_VALUES).min(values);
                let mut weak = Vec::new();
                for i in chunk_start..chunk_end {
                    for b in 0..bits {
                        let offset = i as u64 * bits as u64 + b as u64;
                        let (row, bitline) = layout.locate(offset);
                        if self.is_weak(row, bitline) {
                            weak.push(WeakCell {
                                local_value: (i - chunk_start) as u32,
                                bit: b as u8,
                            });
                        }
                    }
                }
                chunks.push(weak);
            }
        }
        let total = chunks.iter().map(|c| c.len()).sum();
        WeakCellMap {
            chunks,
            values,
            bits,
            total,
        }
    }

    /// [`ErrorModel::inject_seeded`] over a precomputed [`WeakCellMap`] —
    /// bit-identical flips (the map enumerates exactly the cells the full
    /// scan would visit, in the same order, and the per-access RNG draws are
    /// consumed identically), at O(weak cells) instead of O(total bits) per
    /// load.
    ///
    /// # Panics
    ///
    /// Panics if the map was computed for a different tensor geometry.
    pub fn inject_seeded_mapped(
        &self,
        tensor: &mut QuantTensor,
        stream_seed: u64,
        map: &WeakCellMap,
    ) -> u64 {
        assert_eq!(map.values, tensor.len(), "weak map geometry (values)");
        assert_eq!(
            map.bits,
            tensor.bits_per_value(),
            "weak map geometry (bits)"
        );
        // Fast path: no weak cells means no flips and no RNG draws — skip
        // the chunk fan-out and per-chunk stream construction entirely.
        if self.weak_fraction == 0.0 || map.is_empty() {
            return 0;
        }
        let flips = eden_par::par_map_chunks_mut(
            tensor.stored_mut(),
            INJECT_CHUNK_VALUES,
            |chunk_idx, chunk| {
                let mut rng = StdRng::seed_from_u64(seed_mix(stream_seed, &[chunk_idx as u64]));
                let mut flipped = 0u64;
                for cell in &map.chunks[chunk_idx] {
                    let word = &mut chunk[cell.local_value as usize];
                    let stored_one = (*word >> cell.bit) & 1 == 1;
                    let f = self.weak_flip_prob(0, 0, stored_one);
                    if rng.gen::<f64>() < f {
                        *word ^= 1 << cell.bit;
                        flipped += 1;
                    }
                }
                flipped
            },
        );
        flips.iter().sum()
    }

    /// The sparse-overlay form of [`ErrorModel::inject_seeded_mapped`]:
    /// instead of mutating the tensor, computes the
    /// [`CorruptionOverlay`] the injection *would* produce on `clean` — the
    /// per-word `(word index, xor mask)` deltas of exactly the flips the
    /// mapped injection makes, with identical per-chunk RNG stream
    /// consumption (one draw per weak cell, in map order, including the
    /// data-dependent model's evaluation of partially-corrupted words).
    ///
    /// Applying the returned overlay to `clean` is bit-identical to calling
    /// `inject_seeded_mapped` on it, at O(weak cells) to produce and
    /// O(flips) to apply/revert — the contract the evaluation-session layer
    /// builds its patch-and-restore weight pools on.
    ///
    /// # Panics
    ///
    /// Panics if the map was computed for a different tensor geometry.
    pub fn overlay_seeded_mapped(
        &self,
        clean: &QuantTensor,
        stream_seed: u64,
        map: &WeakCellMap,
    ) -> CorruptionOverlay {
        assert_eq!(map.values, clean.len(), "weak map geometry (values)");
        assert_eq!(map.bits, clean.bits_per_value(), "weak map geometry (bits)");
        if self.weak_fraction == 0.0 || map.is_empty() {
            return CorruptionOverlay::empty(clean.len(), clean.bits_per_value());
        }
        let stored = clean.stored();
        let per_chunk = eden_par::par_map(&map.chunks, |chunk_idx, cells| {
            let mut rng = StdRng::seed_from_u64(seed_mix(stream_seed, &[chunk_idx as u64]));
            let base = chunk_idx * INJECT_CHUNK_VALUES;
            let mut deltas: Vec<(u32, u32)> = Vec::new();
            let mut flips = 0u64;
            // Track the live (partially corrupted) bits of the word under
            // the cursor: the data-dependent model reads the *current* bit
            // value, which earlier flips of the same word may have changed —
            // exactly as the in-place injection does.
            let mut cur: Option<(u32, u32, u32)> = None; // (word, live bits, mask)
            for cell in cells.iter() {
                let g = (base + cell.local_value as usize) as u32;
                let (mut word, mut mask) = match cur {
                    Some((w, live, m)) if w == g => (live, m),
                    other => {
                        if let Some((w, _, m)) = other {
                            if m != 0 {
                                deltas.push((w, m));
                            }
                        }
                        (stored[g as usize], 0)
                    }
                };
                let stored_one = (word >> cell.bit) & 1 == 1;
                let f = self.weak_flip_prob(0, 0, stored_one);
                if rng.gen::<f64>() < f {
                    word ^= 1 << cell.bit;
                    mask ^= 1 << cell.bit;
                    flips += 1;
                }
                cur = Some((g, word, mask));
            }
            if let Some((w, _, m)) = cur {
                if m != 0 {
                    deltas.push((w, m));
                }
            }
            (deltas, flips)
        });
        let mut deltas = Vec::new();
        let mut flips = 0u64;
        for (chunk_deltas, chunk_flips) in per_chunk {
            deltas.extend(chunk_deltas);
            flips += chunk_flips;
        }
        CorruptionOverlay::new(clean.len(), clean.bits_per_value(), deltas, flips, 0)
    }

    /// [`ErrorModel::overlay_seeded_mapped`] without a precomputed map: scans
    /// the placement for weak cells first (O(total bits), like
    /// [`ErrorModel::inject_seeded`]) and then derives the overlay. Callers
    /// on a hot path should precompute the [`WeakCellMap`] instead.
    pub fn overlay_seeded(
        &self,
        clean: &QuantTensor,
        layout: &Layout,
        stream_seed: u64,
    ) -> CorruptionOverlay {
        let map = self.weak_map(clean.len(), clean.bits_per_value(), layout);
        self.overlay_seeded_mapped(clean, stream_seed, &map)
    }

    /// Injects bit errors into a stored tensor, drawing per-access failures
    /// from independent per-chunk RNG streams derived from `stream_seed`
    /// (see [`INJECT_CHUNK_VALUES`]). Chunks are corrupted in parallel on the
    /// current `eden-par` pool; the result is bit-identical for any thread
    /// count, including 1.
    ///
    /// Returns the number of bits flipped.
    pub fn inject_seeded(
        &self,
        tensor: &mut QuantTensor,
        layout: &Layout,
        stream_seed: u64,
    ) -> u64 {
        if self.weak_fraction == 0.0 {
            return 0;
        }
        let bits = tensor.bits_per_value();
        let layout = *layout;
        let flips = eden_par::par_map_chunks_mut(
            tensor.stored_mut(),
            INJECT_CHUNK_VALUES,
            |chunk_idx, chunk| {
                let mut rng = StdRng::seed_from_u64(seed_mix(stream_seed, &[chunk_idx as u64]));
                let first_value = chunk_idx * INJECT_CHUNK_VALUES;
                self.inject_chunk(chunk, bits, first_value, &layout, &mut rng)
            },
        );
        flips.iter().sum()
    }

    /// Corrupts one chunk of raw stored words (values
    /// `first_value..first_value + chunk.len()` of the tensor).
    fn inject_chunk(
        &self,
        chunk: &mut [u32],
        bits: u32,
        first_value: usize,
        layout: &Layout,
        rng: &mut StdRng,
    ) -> u64 {
        let mut flipped = 0u64;
        for (j, word) in chunk.iter_mut().enumerate() {
            let i = first_value + j;
            for b in 0..bits {
                let offset = i as u64 * bits as u64 + b as u64;
                let (row, bitline) = layout.locate(offset);
                if !self.is_weak(row, bitline) {
                    continue;
                }
                let stored_one = (*word >> b) & 1 == 1;
                let f = self.weak_flip_prob(row, bitline, stored_one);
                if rng.gen::<f64>() < f {
                    *word ^= 1 << b;
                    flipped += 1;
                }
            }
        }
        flipped
    }
}

impl fmt::Display for ErrorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (P={:.4}, F={:.3}, BER≈{:.2e})",
            self.kind,
            self.weak_fraction,
            self.flip_prob,
            self.expected_ber()
        )
    }
}

fn clamp_prob(p: f64) -> f64 {
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_tensor::{Precision, Tensor};
    use rand::SeedableRng;

    fn stored(n: usize, precision: Precision) -> QuantTensor {
        let t = Tensor::from_vec((0..n).map(|i| (i as f32 * 0.37).sin()).collect(), &[n]);
        QuantTensor::quantize(&t, precision)
    }

    #[test]
    fn mapped_injection_is_bit_identical_to_the_full_scan() {
        // The weak-map fast path must reproduce the full O(total bits) scan
        // exactly — same flips, same count — for every model kind, layout
        // and precision, including multi-chunk tensors.
        for model in [
            ErrorModel::uniform(0.02, 0.5, 3),
            ErrorModel::bitline(0.02, 0.5, 0.8, 3),
            ErrorModel::wordline(0.02, 0.5, 0.8, 3),
            ErrorModel::data_dependent(0.02, 0.7, 0.3, 3),
            ErrorModel::uniform(0.02, 0.5, 3).with_ber(1e-3),
            ErrorModel::uniform(0.0, 0.5, 3),
        ] {
            for (n, precision, layout) in [
                (10_000, Precision::Int8, Layout::new(512, 3)),
                (5_000, Precision::Int16, Layout::default()),
                (131, Precision::Int4, Layout::new(2048, 0)),
            ] {
                let clean = stored(n, precision);
                let mut scanned = clean.clone();
                let scan_flips = model.inject_seeded(&mut scanned, &layout, 77);
                let map = model.weak_map(n, precision.bits(), &layout);
                let mut mapped = clean.clone();
                let map_flips = model.inject_seeded_mapped(&mut mapped, 77, &map);
                assert_eq!(scan_flips, map_flips, "{model} flip count at n={n}");
                assert_eq!(scanned, mapped, "{model} flip pattern at n={n}");
            }
        }
    }

    #[test]
    fn overlay_is_bit_identical_to_mapped_injection() {
        // Applying the overlay to the clean image must reproduce the mapped
        // in-place injection exactly — same flips, same count — for every
        // model kind (including the data-dependent one, whose flip
        // probabilities read partially-corrupted words), layout and
        // precision, including multi-chunk tensors.
        for model in [
            ErrorModel::uniform(0.02, 0.5, 3),
            ErrorModel::bitline(0.02, 0.5, 0.8, 3),
            ErrorModel::wordline(0.02, 0.5, 0.8, 3),
            ErrorModel::data_dependent(0.02, 0.7, 0.3, 3),
            ErrorModel::data_dependent(0.3, 0.9, 0.1, 5),
            ErrorModel::uniform(0.02, 0.5, 3).with_ber(1e-3),
            ErrorModel::uniform(0.0, 0.5, 3),
        ] {
            for (n, precision, layout) in [
                (10_000, Precision::Int8, Layout::new(512, 3)),
                (5_000, Precision::Int16, Layout::default()),
                (131, Precision::Int4, Layout::new(2048, 0)),
                (2_000, Precision::Fp32, Layout::new(1024, 7)),
            ] {
                let clean = stored(n, precision);
                let map = model.weak_map(n, precision.bits(), &layout);
                let mut injected = clean.clone();
                let inject_flips = model.inject_seeded_mapped(&mut injected, 77, &map);
                let overlay = model.overlay_seeded_mapped(&clean, 77, &map);
                assert_eq!(overlay.bit_flips(), inject_flips, "{model} flips at n={n}");
                let mut patched = clean.clone();
                overlay.apply(&mut patched);
                assert_eq!(patched, injected, "{model} flip pattern at n={n}");
                // Revert restores the clean image exactly.
                overlay.revert(&mut patched);
                assert_eq!(patched, clean, "{model} revert at n={n}");
                // The map-less overlay agrees with the mapped one.
                assert_eq!(
                    model.overlay_seeded(&clean, &layout, 77),
                    overlay,
                    "{model} scan overlay at n={n}"
                );
            }
        }
    }

    #[test]
    fn empty_weak_map_injection_is_a_stat_free_no_op() {
        // The fast path: a map with no weak cells must leave the tensor
        // untouched and report zero flips, for both the in-place and the
        // overlay form.
        let model = ErrorModel::uniform(0.05, 0.5, 1).with_ber(0.0);
        let layout = Layout::default();
        let map = model.weak_map(10_000, 8, &layout);
        assert!(map.is_empty());
        assert_eq!(map.weak_cells(), 0);
        let clean = stored(10_000, Precision::Int8);
        let mut t = clean.clone();
        assert_eq!(model.inject_seeded_mapped(&mut t, 9, &map), 0);
        assert_eq!(t, clean);
        let overlay = model.overlay_seeded_mapped(&clean, 9, &map);
        assert!(overlay.is_empty());
        assert_eq!(overlay.bit_flips(), 0);
    }

    #[test]
    fn fingerprints_identify_model_parameters() {
        let a = ErrorModel::uniform(0.02, 0.5, 3);
        assert_eq!(
            a.fingerprint(),
            ErrorModel::uniform(0.02, 0.5, 3).fingerprint()
        );
        // Any parameter change — rescaled BER, different seed, different
        // kind — must change the fingerprint.
        assert_ne!(a.fingerprint(), a.with_ber(1e-3).fingerprint());
        assert_ne!(
            a.fingerprint(),
            ErrorModel::uniform(0.02, 0.5, 4).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            ErrorModel::bitline(0.02, 0.5, 0.0, 3).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            ErrorModel::data_dependent(0.02, 0.5, 0.5, 3).fingerprint()
        );
    }

    #[test]
    fn weak_map_counts_scale_with_weak_fraction() {
        let layout = Layout::default();
        let dense = ErrorModel::uniform(0.05, 0.5, 1).weak_map(10_000, 8, &layout);
        let sparse = ErrorModel::uniform(0.001, 0.5, 1).weak_map(10_000, 8, &layout);
        assert!(dense.weak_cells() > 10 * sparse.weak_cells());
        let none = ErrorModel::uniform(0.0, 0.5, 1).weak_map(10_000, 8, &layout);
        assert_eq!(none.weak_cells(), 0);
    }

    #[test]
    fn observed_ber_matches_expected_ber() {
        for kind_model in [
            ErrorModel::uniform(0.02, 0.5, 3),
            ErrorModel::bitline(0.02, 0.5, 0.8, 3),
            ErrorModel::wordline(0.02, 0.5, 0.8, 3),
            ErrorModel::data_dependent(0.02, 0.7, 0.3, 3),
        ] {
            // A narrow row layout and a large tensor give the
            // spatially-correlated models enough distinct bitlines *and* rows
            // (~1000 of each) for their line-level variation to average out.
            let clean = stored(64_000, Precision::Int8);
            let mut corrupted = clean.clone();
            let mut rng = StdRng::seed_from_u64(11);
            kind_model.inject(&mut corrupted, &Layout::new(512, 0), &mut rng);
            let observed = clean.bit_differences(&corrupted) as f64 / clean.total_bits() as f64;
            let expected = kind_model.expected_ber();
            assert!(
                (observed - expected).abs() / expected < 0.35,
                "{kind_model}: observed {observed:.4} vs expected {expected:.4}"
            );
        }
    }

    #[test]
    fn with_ber_scales_expected_rate() {
        let m = ErrorModel::uniform(0.01, 0.4, 0);
        for target in [1e-4, 1e-3, 1e-2, 0.2] {
            let scaled = m.with_ber(target);
            assert!((scaled.expected_ber() - target).abs() / target < 1e-6);
            assert_eq!(scaled.kind(), m.kind());
        }
        assert_eq!(m.with_ber(0.0).expected_ber(), 0.0);
    }

    #[test]
    fn zero_ber_model_never_flips() {
        let m = ErrorModel::uniform(0.05, 0.5, 1).with_ber(0.0);
        let clean = stored(1000, Precision::Int8);
        let mut c = clean.clone();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.inject(&mut c, &Layout::default(), &mut rng), 0);
        assert_eq!(c, clean);
    }

    #[test]
    fn weak_cells_are_stable_across_calls() {
        let m = ErrorModel::uniform(0.05, 1.0, 9);
        assert_eq!(m.is_weak(10, 20), m.is_weak(10, 20));
        // With F = 1.0, two injections into identical data flip exactly the
        // same cells.
        let clean = stored(2000, Precision::Int16);
        let mut a = clean.clone();
        let mut b = clean.clone();
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(2);
        m.inject(&mut a, &Layout::default(), &mut rng_a);
        m.inject(&mut b, &Layout::default(), &mut rng_b);
        assert_eq!(
            a, b,
            "deterministic weak cells with F=1 must flip identically"
        );
    }

    #[test]
    fn bitline_model_concentrates_errors_on_bitlines() {
        // Use a narrow row so bitlines repeat often, then check the flip
        // distribution across bitlines is much more skewed than uniform.
        let layout = Layout::new(256, 0);
        let uniform = ErrorModel::uniform(0.05, 0.8, 5);
        let bitline = ErrorModel::bitline(0.05, 0.8, 1.0, 5);
        let count_per_line = |m: &ErrorModel| {
            let clean = stored(8192, Precision::Int8);
            let mut c = clean.clone();
            let mut rng = StdRng::seed_from_u64(3);
            m.inject(&mut c, &layout, &mut rng);
            let mut per_line = vec![0u32; 256];
            for i in 0..clean.len() {
                for b in 0..8u32 {
                    if clean.get_bit(i, b) != c.get_bit(i, b) {
                        let offset = i as u64 * 8 + b as u64;
                        per_line[(offset % 256) as usize] += 1;
                    }
                }
            }
            per_line
        };
        let max_frac = |v: &[u32]| {
            let total: u32 = v.iter().sum();
            *v.iter().max().unwrap() as f64 / total.max(1) as f64
        };
        assert!(
            max_frac(&count_per_line(&bitline)) > 2.0 * max_frac(&count_per_line(&uniform)),
            "bitline model should concentrate flips on few bitlines"
        );
    }

    #[test]
    fn wordline_model_concentrates_errors_on_rows() {
        let layout = Layout::new(256, 0);
        let wordline = ErrorModel::wordline(0.05, 0.8, 1.0, 8);
        let clean = stored(8192, Precision::Int8);
        let mut c = clean.clone();
        let mut rng = StdRng::seed_from_u64(4);
        wordline.inject(&mut c, &layout, &mut rng);
        let rows = 8192 * 8 / 256;
        let mut per_row = vec![0u32; rows];
        for i in 0..clean.len() {
            for b in 0..8u32 {
                if clean.get_bit(i, b) != c.get_bit(i, b) {
                    per_row[(i * 8 + b as usize) / 256] += 1;
                }
            }
        }
        // A concentrated model has "hot" rows far above the mean row count.
        let total: u32 = per_row.iter().sum();
        let mean = total as f64 / rows as f64;
        let max = *per_row.iter().max().unwrap() as f64;
        assert!(
            max > 3.0 * mean,
            "hottest row ({max}) should be well above the mean ({mean:.1})"
        );
    }

    #[test]
    fn data_dependent_model_prefers_configured_direction() {
        // All-ones data with F_V1 >> F_V0 flips many bits; all-zeros data few.
        let ones = QuantTensor::quantize(
            &Tensor::from_vec(vec![-1.0; 4096], &[4096]),
            Precision::Int8,
        );
        let zeros =
            QuantTensor::quantize(&Tensor::from_vec(vec![0.0; 4096], &[4096]), Precision::Int8);
        let m = ErrorModel::data_dependent(0.05, 0.9, 0.01, 6);
        let flips = |clean: &QuantTensor| {
            let mut c = clean.clone();
            let mut rng = StdRng::seed_from_u64(5);
            m.inject(&mut c, &Layout::default(), &mut rng)
        };
        // -1.0 in two's complement int8 is 0xFF (all ones).
        assert!(flips(&ones) > 10 * flips(&zeros).max(1));
    }

    #[test]
    fn display_mentions_paper_numbering() {
        assert_eq!(ErrorModelKind::Uniform.to_string(), "Error Model 0");
        assert_eq!(ErrorModelKind::DataDependent.to_string(), "Error Model 3");
        assert!(ErrorModel::uniform(0.01, 0.5, 0)
            .to_string()
            .contains("Error Model 0"));
    }
}
