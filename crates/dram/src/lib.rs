//! # eden-dram
//!
//! Approximate DRAM substrate for the EDEN reproduction.
//!
//! The paper (Sections 2.2–2.3, 4 and 6.2) relies on:
//!
//! * DRAM organization and operating parameters (supply voltage `VDD` and the
//!   timing parameters `tRCD`/`tRAS`/`tRP`) — [`params`], [`geometry`];
//! * real approximate DRAM devices whose bit-error behaviour depends on the
//!   operating point, on the stored data pattern and on spatial location
//!   (bitline / wordline), characterized per vendor (Figure 5) — [`vendor`],
//!   [`device`], [`characterize`];
//! * four probabilistic error models fitted to device observations with
//!   maximum-likelihood estimation and model selection (Section 4) —
//!   [`error_model`], [`fit`];
//! * error injection into the bit-exact stored representation of DNN data —
//!   [`inject`];
//! * a DRAMPower-style energy model with `VDD²` scaling — [`energy`].
//!
//! # Example
//!
//! ```
//! use eden_dram::error_model::{ErrorModel, Layout};
//! use eden_tensor::{Precision, QuantTensor, Tensor};
//! use rand::SeedableRng;
//!
//! let model = ErrorModel::uniform(0.01, 0.5, 7);
//! let t = Tensor::from_vec(vec![1.0; 1024], &[1024]);
//! let clean = QuantTensor::quantize(&t, Precision::Int8);
//! let mut corrupted = clean.clone();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! model.inject(&mut corrupted, &Layout::default(), &mut rng);
//! assert!(clean.bit_differences(&corrupted) > 0);
//! ```

pub mod characterize;
pub mod device;
pub mod energy;
pub mod error_model;
pub mod fit;
pub mod geometry;
pub mod inject;
pub mod params;
pub mod system;
pub mod util;
pub mod vendor;

pub use device::ApproxDramDevice;
pub use eden_tensor::CorruptionOverlay;
pub use error_model::{ErrorModel, ErrorModelKind, Layout};
pub use params::OperatingPoint;
pub use system::{DramModule, MemorySystem};
pub use vendor::Vendor;
