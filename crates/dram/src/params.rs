//! DRAM operating parameters: supply voltage and timing.
//!
//! Nominal DDR4 values follow the paper (Section 2.2): `tRCD = 12.5 ns`,
//! `tRAS = 32 ns`, `tRP = 12.5 ns`, `CL = 12.5 ns`, `VDD = 1.35 V` (the value
//! the paper's characterized modules use as nominal in Section 6.5). EDEN
//! reduces `VDD` and `tRCD` below these values, trading reliability for
//! energy and latency.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Nominal DDR4 supply voltage used by the paper's characterization (volts).
pub const NOMINAL_VDD: f32 = 1.35;
/// Nominal DDR4 row-activation latency (nanoseconds).
pub const NOMINAL_TRCD_NS: f32 = 12.5;
/// Nominal DDR4 row-precharge latency (nanoseconds).
pub const NOMINAL_TRP_NS: f32 = 12.5;
/// Nominal DDR4 row-active time (nanoseconds).
pub const NOMINAL_TRAS_NS: f32 = 32.0;
/// Nominal DDR4 CAS latency (nanoseconds); not adjustable in the memory
/// controller (Figure 3 caption).
pub const NOMINAL_CL_NS: f32 = 12.5;
/// Largest supply-voltage reduction EDEN's sweeps consider (volts): the
/// deepest ΔVDD of Table 3 / Figure 5. Mapping normalizes operating-point
/// benefit against this limit.
pub const MAX_VDD_REDUCTION: f32 = 0.35;
/// Largest `tRCD` reduction EDEN's sweeps consider (nanoseconds): the deepest
/// ΔtRCD of Table 3 / Figure 5. Mapping normalizes operating-point benefit
/// against this limit.
pub const MAX_TRCD_REDUCTION_NS: f32 = 6.0;

/// DRAM timing parameters in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Row activation latency (ACT → data sensed).
    pub trcd_ns: f32,
    /// Row active time (ACT → PRE allowed).
    pub tras_ns: f32,
    /// Precharge latency (PRE → next ACT allowed).
    pub trp_ns: f32,
    /// CAS latency (READ → data on bus).
    pub cl_ns: f32,
}

impl TimingParams {
    /// Manufacturer-nominal DDR4 timing.
    pub fn nominal() -> Self {
        Self {
            trcd_ns: NOMINAL_TRCD_NS,
            tras_ns: NOMINAL_TRAS_NS,
            trp_ns: NOMINAL_TRP_NS,
            cl_ns: NOMINAL_CL_NS,
        }
    }

    /// Random-access latency of a row-buffer miss: precharge + activate + CAS.
    pub fn row_miss_latency_ns(&self) -> f32 {
        self.trp_ns + self.trcd_ns + self.cl_ns
    }

    /// Latency of a row-buffer hit: CAS only.
    pub fn row_hit_latency_ns(&self) -> f32 {
        self.cl_ns
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::nominal()
    }
}

/// A DRAM operating point: supply voltage plus timing parameters.
///
/// EDEN explores reduced `vdd` (for energy) and reduced `trcd` (for latency);
/// both reductions increase the bit error rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Supply voltage in volts.
    pub vdd: f32,
    /// Timing parameters.
    pub timing: TimingParams,
}

impl OperatingPoint {
    /// The manufacturer-nominal operating point.
    pub fn nominal() -> Self {
        Self {
            vdd: NOMINAL_VDD,
            timing: TimingParams::nominal(),
        }
    }

    /// Nominal operating point with the supply voltage reduced by `delta_v`
    /// volts.
    ///
    /// # Panics
    ///
    /// Panics if the reduction is negative or produces a non-positive voltage.
    pub fn with_vdd_reduction(delta_v: f32) -> Self {
        assert!(delta_v >= 0.0, "voltage reduction must be non-negative");
        let vdd = NOMINAL_VDD - delta_v;
        assert!(vdd > 0.0, "voltage reduction {delta_v} too large");
        Self {
            vdd,
            timing: TimingParams::nominal(),
        }
    }

    /// Nominal operating point with `tRCD` reduced by `delta_ns` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the reduction is negative or produces a non-positive latency.
    pub fn with_trcd_reduction(delta_ns: f32) -> Self {
        assert!(delta_ns >= 0.0, "tRCD reduction must be non-negative");
        let trcd = NOMINAL_TRCD_NS - delta_ns;
        assert!(trcd > 0.0, "tRCD reduction {delta_ns} too large");
        Self {
            vdd: NOMINAL_VDD,
            timing: TimingParams {
                trcd_ns: trcd,
                ..TimingParams::nominal()
            },
        }
    }

    /// Operating point with both reductions applied.
    pub fn with_reductions(delta_v: f32, delta_trcd_ns: f32) -> Self {
        let mut op = Self::with_vdd_reduction(delta_v);
        op.timing.trcd_ns = NOMINAL_TRCD_NS - delta_trcd_ns;
        assert!(op.timing.trcd_ns > 0.0, "tRCD reduction too large");
        op
    }

    /// Voltage reduction below nominal (≥ 0).
    pub fn vdd_reduction(&self) -> f32 {
        (NOMINAL_VDD - self.vdd).max(0.0)
    }

    /// `tRCD` reduction below nominal (≥ 0).
    pub fn trcd_reduction_ns(&self) -> f32 {
        (NOMINAL_TRCD_NS - self.timing.trcd_ns).max(0.0)
    }

    /// Whether this point is within manufacturer specifications (no
    /// reductions applied).
    pub fn is_nominal(&self) -> bool {
        self.vdd_reduction() == 0.0 && self.trcd_reduction_ns() == 0.0
    }
}

impl Default for OperatingPoint {
    fn default() -> Self {
        Self::nominal()
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VDD={:.2}V tRCD={:.1}ns", self.vdd, self.timing.trcd_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_matches_paper_values() {
        let op = OperatingPoint::nominal();
        assert_eq!(op.vdd, 1.35);
        assert_eq!(op.timing.trcd_ns, 12.5);
        assert_eq!(op.timing.tras_ns, 32.0);
        assert_eq!(op.timing.trp_ns, 12.5);
        assert!(op.is_nominal());
    }

    #[test]
    fn reductions_are_reported() {
        let op = OperatingPoint::with_reductions(0.30, 5.5);
        assert!((op.vdd - 1.05).abs() < 1e-6);
        assert!((op.timing.trcd_ns - 7.0).abs() < 1e-6);
        assert!((op.vdd_reduction() - 0.30).abs() < 1e-6);
        assert!((op.trcd_reduction_ns() - 5.5).abs() < 1e-6);
        assert!(!op.is_nominal());
    }

    #[test]
    fn row_miss_latency_shrinks_with_trcd() {
        let nominal = TimingParams::nominal();
        let reduced = OperatingPoint::with_trcd_reduction(5.0).timing;
        assert!(reduced.row_miss_latency_ns() < nominal.row_miss_latency_ns());
        assert_eq!(reduced.row_hit_latency_ns(), nominal.row_hit_latency_ns());
    }

    #[test]
    fn sweep_limit_constants_are_valid_operating_points() {
        let op = OperatingPoint::with_reductions(MAX_VDD_REDUCTION, MAX_TRCD_REDUCTION_NS);
        assert!((op.vdd_reduction() - MAX_VDD_REDUCTION).abs() < 1e-6);
        assert!((op.trcd_reduction_ns() - MAX_TRCD_REDUCTION_NS).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn excessive_voltage_reduction_rejected() {
        OperatingPoint::with_vdd_reduction(2.0);
    }

    #[test]
    #[should_panic]
    fn excessive_trcd_reduction_rejected() {
        OperatingPoint::with_trcd_reduction(13.0);
    }
}
