//! Small deterministic hashing utilities used by the device and error models.
//!
//! Per-cell weakness must be a *stable* function of the device seed and the
//! cell address (so that re-reading the same location at the same operating
//! point fails the same way, as real weak cells do), but we cannot store a
//! weakness value for every cell of a multi-gigabyte device. These helpers
//! derive stable pseudo-random values from addresses on the fly.

/// SplitMix64 step: maps a 64-bit state to a well-mixed 64-bit value.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically hashes a set of address components with a seed.
pub fn hash_cell(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut h = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    h = splitmix64(h ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    h = splitmix64(h ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    splitmix64(h ^ c.wrapping_mul(0x1656_67B1_9E37_79F9))
}

/// Maps a 64-bit hash to a uniform `f64` in `[0, 1)`.
pub fn hash_to_unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform `[0, 1)` value for a (seed, address) pair.
pub fn unit_for(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    hash_to_unit(hash_cell(seed, a, b, c))
}

/// Derives an independent RNG stream seed from a master seed and a stream
/// index.
///
/// This is the backbone of thread-count-invariant fault injection: every
/// parallelizable unit of work (a tensor load, a sample in a batch, a chunk
/// of a tensor) gets `stream(master, index)` as its own seed, so its random
/// draws depend only on *which* unit it is, never on when or where it runs.
pub fn stream(seed: u64, index: u64) -> u64 {
    splitmix64(splitmix64(seed ^ 0x5EED_51DE_CAFE_F00D) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_cell(1, 2, 3, 4), hash_cell(1, 2, 3, 4));
        assert_ne!(hash_cell(1, 2, 3, 4), hash_cell(2, 2, 3, 4));
        assert_ne!(hash_cell(1, 2, 3, 4), hash_cell(1, 2, 3, 5));
    }

    #[test]
    fn unit_values_are_in_range_and_well_spread() {
        let mut buckets = [0usize; 10];
        for i in 0..10_000u64 {
            let u = unit_for(42, i, 0, 0);
            assert!((0.0..1.0).contains(&u));
            buckets[(u * 10.0) as usize] += 1;
        }
        // Each decile should hold roughly 1000 samples.
        for b in buckets {
            assert!(
                (700..1300).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }

    #[test]
    fn splitmix_changes_all_zero_input() {
        assert_ne!(splitmix64(0), 0);
    }
}
