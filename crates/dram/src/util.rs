//! Small deterministic hashing utilities used by the device and error models.
//!
//! Per-cell weakness must be a *stable* function of the device seed and the
//! cell address (so that re-reading the same location at the same operating
//! point fails the same way, as real weak cells do), but we cannot store a
//! weakness value for every cell of a multi-gigabyte device. These helpers
//! derive stable pseudo-random values from addresses on the fly.

/// SplitMix64 step: maps a 64-bit state to a well-mixed 64-bit value.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically hashes a set of address components with a seed.
pub fn hash_cell(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut h = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    h = splitmix64(h ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    h = splitmix64(h ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    splitmix64(h ^ c.wrapping_mul(0x1656_67B1_9E37_79F9))
}

/// Maps a 64-bit hash to a uniform `f64` in `[0, 1)`.
pub fn hash_to_unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform `[0, 1)` value for a (seed, address) pair.
pub fn unit_for(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    hash_to_unit(hash_cell(seed, a, b, c))
}

/// Mixes a master seed with a sequence of stream components into one derived
/// seed, one chained splitmix64 stage per component.
///
/// This is the **single** seed-derivation helper of the workspace — the
/// backbone of thread-count-invariant fault injection. Every parallelizable
/// or replayable unit of work derives its own seed from the master seed and
/// the coordinates that identify the unit, so its random draws depend only
/// on *which* unit it is, never on when or where it runs:
///
/// * per-chunk injection streams: `seed_mix(stream_seed, &[chunk_index])`
///   ([`crate::ErrorModel::inject_seeded`], the simulated device's reads);
/// * per-sample fork lanes of a batch evaluation:
///   `seed_mix(salted_seed, &[lane])` (`ApproximateMemory::fork` in the core
///   crate);
/// * per-probe seeds of the fine-grained characterization sweep:
///   `seed_mix(seed, &[round, site])`.
///
/// Each component gets a full splitmix64 stage, so components never bleed
/// into each other the way ad-hoc shift/XOR mixing did (`seed ^ (round <<
/// 8) ^ site` collided across rounds for ≥ 256 sites); the cross-module
/// collision regression test below pins this. `seed_mix(seed, &[i])` equals
/// the historical [`stream`]`(seed, i)` bit for bit, and appending a
/// component equals nesting: `seed_mix(s, &[a, b]) == stream(stream(s, a),
/// b)`.
pub fn seed_mix(seed: u64, components: &[u64]) -> u64 {
    components.iter().fold(seed, |s, &c| {
        splitmix64(splitmix64(s ^ 0x5EED_51DE_CAFE_F00D) ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    })
}

/// Derives an independent RNG stream seed from a master seed and a single
/// stream index: shorthand for [`seed_mix`]`(seed, &[index])`.
pub fn stream(seed: u64, index: u64) -> u64 {
    seed_mix(seed, &[index])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_cell(1, 2, 3, 4), hash_cell(1, 2, 3, 4));
        assert_ne!(hash_cell(1, 2, 3, 4), hash_cell(2, 2, 3, 4));
        assert_ne!(hash_cell(1, 2, 3, 4), hash_cell(1, 2, 3, 5));
    }

    #[test]
    fn unit_values_are_in_range_and_well_spread() {
        let mut buckets = [0usize; 10];
        for i in 0..10_000u64 {
            let u = unit_for(42, i, 0, 0);
            assert!((0.0..1.0).contains(&u));
            buckets[(u * 10.0) as usize] += 1;
        }
        // Each decile should hold roughly 1000 samples.
        for b in buckets {
            assert!(
                (700..1300).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }

    #[test]
    fn splitmix_changes_all_zero_input() {
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn seed_mix_is_chained_stream_derivation() {
        // The documented equivalences: one component is `stream`, appending a
        // component nests, and no component is the identity.
        assert_eq!(seed_mix(42, &[7]), stream(42, 7));
        assert_eq!(seed_mix(42, &[7, 9]), stream(stream(42, 7), 9));
        assert_eq!(seed_mix(42, &[]), 42);
    }

    #[test]
    fn seed_mix_streams_do_not_collide_across_modules() {
        // Cross-module collision regression: the three derivation shapes the
        // workspace uses — per-chunk streams `[chunk]`, salted fork lanes
        // `[lane]` over a salted master, and per-probe `[round, site]` pairs
        // — must produce pairwise-distinct seeds over realistic index ranges
        // for one master seed. (The fork salt below mirrors the one the core
        // crate applies before lane mixing.)
        const FORK_SALT: u64 = 0xF0_4B_1A_9E_5A_17_ED_01;
        let master = 0xEDE2_5EEDu64;
        let mut seen = std::collections::HashMap::new();
        let mut insert = |label: &'static str, a: u64, b: u64, value: u64| {
            if let Some(prev) = seen.insert(value, (label, a, b)) {
                panic!("seed collision: {label}({a},{b}) vs {prev:?}");
            }
        };
        for i in 0..2048u64 {
            insert("chunk", i, 0, seed_mix(master, &[i]));
            insert("fork", i, 0, seed_mix(master ^ FORK_SALT, &[i]));
        }
        for round in 0..8u64 {
            for site in 0..512u64 {
                insert("probe", round, site, seed_mix(master, &[round, site]));
            }
        }
    }
}
