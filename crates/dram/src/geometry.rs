//! DRAM organization: banks, subarrays, rows and partitions.
//!
//! EDEN partitions DRAM at chip, bank or subarray granularity and operates
//! each partition at its own voltage/latency (Section 3.4, Section 5). This
//! module models the address structure needed to (a) place DNN data types in
//! partitions and (b) give bit errors the spatial structure (bitline /
//! wordline locality) observed on real devices.

use serde::{Deserialize, Serialize};

/// Geometry of a DRAM module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramGeometry {
    /// Number of banks in the module.
    pub banks: usize,
    /// Subarrays per bank.
    pub subarrays_per_bank: usize,
    /// Rows per subarray.
    pub rows_per_subarray: usize,
    /// Row size in bytes (the unit sensed by one activation).
    pub row_bytes: usize,
}

impl DramGeometry {
    /// A 16-bank DDR4-like module with 2 KB rows (8 GB-class geometry scaled
    /// to the sizes this reproduction actually stores).
    pub fn ddr4_module() -> Self {
        Self {
            banks: 16,
            subarrays_per_bank: 32,
            rows_per_subarray: 512,
            row_bytes: 2048,
        }
    }

    /// Row size in bits.
    pub fn row_bits(&self) -> usize {
        self.row_bytes * 8
    }

    /// Rows per bank.
    pub fn rows_per_bank(&self) -> usize {
        self.subarrays_per_bank * self.rows_per_subarray
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.banks as u64 * self.rows_per_bank() as u64 * self.row_bytes as u64
    }

    /// Capacity of one bank in bytes.
    pub fn bank_bytes(&self) -> u64 {
        self.rows_per_bank() as u64 * self.row_bytes as u64
    }

    /// Capacity of one subarray in bytes.
    pub fn subarray_bytes(&self) -> u64 {
        self.rows_per_subarray as u64 * self.row_bytes as u64
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        Self::ddr4_module()
    }
}

/// Granularity at which DRAM is partitioned for fine-grained mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionGranularity {
    /// One partition per bank.
    Bank,
    /// One partition per subarray.
    Subarray,
}

/// A DRAM partition: a contiguous region that can be operated at its own
/// voltage and timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Partition index within the module.
    pub index: usize,
    /// Bank that contains this partition.
    pub bank: usize,
    /// First subarray of the partition within the bank.
    pub first_subarray: usize,
    /// Number of subarrays in the partition.
    pub subarrays: usize,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
}

/// Splits a module into equal partitions at the requested granularity.
pub fn partitions(geometry: &DramGeometry, granularity: PartitionGranularity) -> Vec<Partition> {
    match granularity {
        PartitionGranularity::Bank => (0..geometry.banks)
            .map(|b| Partition {
                index: b,
                bank: b,
                first_subarray: 0,
                subarrays: geometry.subarrays_per_bank,
                capacity_bytes: geometry.bank_bytes(),
            })
            .collect(),
        PartitionGranularity::Subarray => {
            let mut out = Vec::with_capacity(geometry.banks * geometry.subarrays_per_bank);
            let mut index = 0;
            for bank in 0..geometry.banks {
                for sa in 0..geometry.subarrays_per_bank {
                    out.push(Partition {
                        index,
                        bank,
                        first_subarray: sa,
                        subarrays: 1,
                        capacity_bytes: geometry.subarray_bytes(),
                    });
                    index += 1;
                }
            }
            out
        }
    }
}

/// Physical location of one bit within a module (used to give injected errors
/// the spatial structure of the device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitAddress {
    /// Bank index.
    pub bank: usize,
    /// Row index within the bank.
    pub row: usize,
    /// Bit position within the row (the bitline the cell sits on).
    pub bitline: usize,
}

/// Maps a linear bit offset within a partition to a physical bit address,
/// assuming data is stored contiguously row after row.
pub fn bit_address(geometry: &DramGeometry, partition: &Partition, bit_offset: u64) -> BitAddress {
    let row_bits = geometry.row_bits() as u64;
    let row_in_partition = (bit_offset / row_bits) as usize;
    let bitline = (bit_offset % row_bits) as usize;
    let row = partition.first_subarray * geometry.rows_per_subarray
        + (row_in_partition % (partition.subarrays * geometry.rows_per_subarray));
    BitAddress {
        bank: partition.bank,
        row,
        bitline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_geometry_capacity() {
        let g = DramGeometry::ddr4_module();
        assert_eq!(g.rows_per_bank(), 32 * 512);
        assert_eq!(g.capacity_bytes(), 16 * 32 * 512 * 2048);
        assert_eq!(g.row_bits(), 16384);
    }

    #[test]
    fn bank_partitions_cover_module() {
        let g = DramGeometry::ddr4_module();
        let parts = partitions(&g, PartitionGranularity::Bank);
        assert_eq!(parts.len(), 16);
        let total: u64 = parts.iter().map(|p| p.capacity_bytes).sum();
        assert_eq!(total, g.capacity_bytes());
    }

    #[test]
    fn subarray_partitions_cover_module() {
        let g = DramGeometry::ddr4_module();
        let parts = partitions(&g, PartitionGranularity::Subarray);
        assert_eq!(parts.len(), 16 * 32);
        let total: u64 = parts.iter().map(|p| p.capacity_bytes).sum();
        assert_eq!(total, g.capacity_bytes());
        // Indexes are unique and dense.
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn bit_addresses_walk_rows_sequentially() {
        let g = DramGeometry::ddr4_module();
        let parts = partitions(&g, PartitionGranularity::Bank);
        let p = &parts[3];
        let a0 = bit_address(&g, p, 0);
        let a1 = bit_address(&g, p, 1);
        let a_next_row = bit_address(&g, p, g.row_bits() as u64);
        assert_eq!(a0.bank, 3);
        assert_eq!(a0.row, a1.row);
        assert_eq!(a1.bitline, 1);
        assert_eq!(a_next_row.row, a0.row + 1);
        assert_eq!(a_next_row.bitline, 0);
    }

    #[test]
    fn bit_addresses_wrap_within_partition() {
        let g = DramGeometry::ddr4_module();
        let parts = partitions(&g, PartitionGranularity::Subarray);
        let p = &parts[0];
        let beyond = bit_address(&g, p, p.capacity_bytes * 8 + 5);
        assert!(beyond.row < g.rows_per_subarray);
    }
}
