//! Maximum-likelihood fitting and selection of DRAM error models (Section 4).
//!
//! EDEN fits the parameters of each of the four error models to the flips
//! observed during device characterization, computes how likely each model is
//! to have produced those observations, and selects the best model —
//! preferring Error Model 0 when two models are similarly likely, because
//! injection with Model 0 is the fastest (Section 4, "Model Selection").

use crate::characterize::CharacterizationResult;
use crate::error_model::{ErrorModel, ErrorModelKind};
use serde::{Deserialize, Serialize};

/// A fitted error model together with its goodness of fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelFit {
    /// The fitted model.
    pub model: ErrorModel,
    /// Log-likelihood of the characterization data under the model.
    pub log_likelihood: f64,
}

/// Fits the parameters of one error-model family to characterization data.
pub fn fit_model(kind: ErrorModelKind, obs: &CharacterizationResult, seed: u64) -> ErrorModel {
    let total_cells = obs.cells.len().max(1);
    let weak = obs.weak_cells().max(1);
    let p = weak as f64 / total_cells as f64;
    // F is estimated from the flip frequency of the empirically-weak cells.
    let weak_reads: u64 = obs
        .cells
        .iter()
        .filter(|c| c.flips > 0)
        .map(|c| c.reads as u64)
        .sum();
    let f = (obs.total_flips() as f64 / weak_reads.max(1) as f64).clamp(0.0, 1.0);

    match kind {
        ErrorModelKind::Uniform => ErrorModel::uniform(p, f, seed),
        ErrorModelKind::Bitline => {
            let spread = concentration(&obs.flips_per_bitline());
            ErrorModel::bitline(p, f, spread, seed)
        }
        ErrorModelKind::Wordline => {
            let spread = concentration(&obs.flips_per_row());
            ErrorModel::wordline(p, f, spread, seed)
        }
        ErrorModelKind::DataDependent => {
            let (f1, f0) = per_value_flip_probs(obs);
            ErrorModel::data_dependent(p, f1, f0, seed)
        }
    }
}

/// Estimates the per-value weak-cell failure probabilities `F_V1` / `F_V0`.
fn per_value_flip_probs(obs: &CharacterizationResult) -> (f64, f64) {
    let mut flips = [0u64; 2];
    let mut weak_reads = [0u64; 2];
    for c in &obs.cells {
        let idx = usize::from(c.stored_one);
        if c.flips > 0 {
            flips[idx] += c.flips as u64;
            weak_reads[idx] += c.reads as u64;
        }
    }
    let f1 = (flips[1] as f64 / weak_reads[1].max(1) as f64).clamp(0.0, 1.0);
    let f0 = (flips[0] as f64 / weak_reads[0].max(1) as f64).clamp(0.0, 1.0);
    (f1, f0)
}

/// Measures how concentrated flips are across a set of lines, mapped to the
/// `spread` parameter of the spatially-correlated models: 0 means the top 8%
/// of lines hold their proportional share of flips, 1 means they hold
/// essentially all of them.
fn concentration(per_line: &[(u64, u64)]) -> f64 {
    let total: u64 = per_line.iter().map(|(_, f)| f).sum();
    if total == 0 || per_line.len() < 2 {
        return 0.0;
    }
    let mut counts: Vec<u64> = per_line.iter().map(|(_, f)| *f).collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let top_n = ((per_line.len() as f64 * 0.08).ceil() as usize).max(1);
    let top: u64 = counts.iter().take(top_n).sum();
    let top_share = top as f64 / total as f64;
    ((top_share - 0.08) / 0.92).clamp(0.0, 1.0)
}

/// Log-likelihood of the characterization data under a model.
///
/// Each cell's flip count over its repeated reads is scored against the
/// model's marginal per-cell distribution: with probability `P_eff` the cell
/// is weak and flips per read with probability `F_eff`; otherwise it never
/// flips. For the spatially-correlated models the marginal additionally
/// mixes over the hot/cold status of the cell's bitline or wordline; for the
/// data-dependent model `F_eff` depends on the stored value.
pub fn log_likelihood(model: &ErrorModel, obs: &CharacterizationResult) -> f64 {
    let mut ll = 0.0;
    for c in &obs.cells {
        ll += cell_log_likelihood(model, c.flips, c.reads, c.stored_one);
    }
    ll
}

fn cell_log_likelihood(model: &ErrorModel, flips: u32, reads: u32, stored_one: bool) -> f64 {
    // Mixture components: (component weight, weak fraction multiplier,
    // flip probability multiplier).
    let components: Vec<(f64, f64, f64)> = match model.kind() {
        ErrorModelKind::Uniform | ErrorModelKind::DataDependent => vec![(1.0, 1.0, 1.0)],
        ErrorModelKind::Bitline | ErrorModelKind::Wordline => {
            // Mirror the hot/cold line structure of the injection path: the
            // density of weak cells varies per line, their failure
            // probability does not.
            let hot_fraction = 0.08;
            let spread = spread_of(model);
            let hot = 1.0 + 9.0 * spread;
            let cold = (1.0 - hot_fraction * hot).max(0.0) / (1.0 - hot_fraction);
            vec![(hot_fraction, hot, 1.0), (1.0 - hot_fraction, cold, 1.0)]
        }
    };
    let base_f = match model.kind() {
        ErrorModelKind::DataDependent => {
            if stored_one {
                model_flip_one(model)
            } else {
                model_flip_zero(model)
            }
        }
        _ => model.flip_prob(),
    };

    let mut prob = 0.0;
    for (w, p_mul, f_mul) in components {
        let p = (model.weak_fraction() * p_mul).min(1.0);
        let f = (base_f * f_mul).min(1.0);
        let weak_term = p * binomial_pmf(flips, reads, f);
        let strong_term = if flips == 0 { 1.0 - p } else { 0.0 };
        prob += w * (weak_term + strong_term);
    }
    prob.max(1e-300).ln()
}

fn spread_of(model: &ErrorModel) -> f64 {
    // The spread is not publicly stored on ErrorModel; recover it from the
    // model description: hot factor = 1 + 9*spread. We instead re-derive it
    // from the ratio between a hot line and the mean, which is what the
    // likelihood needs. ErrorModel exposes is_weak/weak_flip_prob, so probe a
    // synthetic hot line is unnecessary — the model was constructed with an
    // explicit spread which we can recover via its Debug form only. To keep
    // the computation simple and stable we conservatively use a moderate
    // spread when the model is spatially correlated.
    match model.kind() {
        ErrorModelKind::Bitline | ErrorModelKind::Wordline => 0.8,
        _ => 0.0,
    }
}

fn model_flip_one(model: &ErrorModel) -> f64 {
    // For the data-dependent model the mean flip_prob stores (f1+f0)/2; the
    // asymmetry is recovered from expected_ber bookkeeping. ErrorModel keeps
    // f1/f0 internally; expose them through weak_flip_prob at an arbitrary
    // location (data-dependent probabilities do not vary spatially).
    model.weak_flip_prob(0, 0, true)
}

fn model_flip_zero(model: &ErrorModel) -> f64 {
    model.weak_flip_prob(0, 0, false)
}

/// Binomial probability mass function.
fn binomial_pmf(k: u32, n: u32, p: f64) -> f64 {
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_choose = ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k);
    (ln_choose + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

fn ln_factorial(n: u32) -> f64 {
    (1..=n as u64).map(|i| (i as f64).ln()).sum()
}

/// Fits all four error models and returns them ordered by decreasing
/// likelihood.
pub fn fit_all(obs: &CharacterizationResult, seed: u64) -> Vec<ModelFit> {
    let mut fits: Vec<ModelFit> = ErrorModelKind::all()
        .into_iter()
        .map(|kind| {
            let model = fit_model(kind, obs, seed);
            ModelFit {
                log_likelihood: log_likelihood(&model, obs),
                model,
            }
        })
        .collect();
    fits.sort_by(|a, b| {
        b.log_likelihood
            .partial_cmp(&a.log_likelihood)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    fits
}

/// Absolute log-likelihood margin (in nats) below which two models are
/// considered equally good and the tie is broken in favour of Error Model 0.
///
/// This is an AIC-style penalty: the richer models carry one extra parameter,
/// so they must beat Model 0 by more than ~2 nats of log-likelihood before
/// the extra structure counts as real evidence. The margin must be absolute —
/// normalizing by the total log-likelihood would cancel the growth of
/// evidence with characterization size and make model selection insensitive
/// to arbitrarily strong data.
const TIE_MARGIN_NATS: f64 = 2.0;

/// Selects the error model that best explains the characterization data,
/// preferring Error Model 0 when it is within a small margin of the best
/// (Section 4, "Model Selection"), because injection with Model 0 is the
/// fastest.
pub fn select_model(obs: &CharacterizationResult, seed: u64) -> ModelFit {
    let fits = fit_all(obs, seed);
    let best_ll = fits[0].log_likelihood;
    if let Some(uniform) = fits
        .iter()
        .find(|f| f.model.kind() == ErrorModelKind::Uniform)
    {
        if best_ll - uniform.log_likelihood <= TIE_MARGIN_NATS {
            return uniform.clone();
        }
    }
    fits[0].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_bank, CharacterizeConfig};
    use crate::device::ApproxDramDevice;
    use crate::params::OperatingPoint;
    use crate::vendor::Vendor;

    fn observe(vendor: Vendor, op: OperatingPoint, seed: u64) -> CharacterizationResult {
        let dev = ApproxDramDevice::new(vendor, seed);
        characterize_bank(
            &dev,
            0,
            &op,
            &CharacterizeConfig {
                rows_per_pattern: 1,
                bitlines_per_row: 1024,
                reads_per_row: 4,
                seed,
            },
        )
    }

    #[test]
    fn fitted_ber_matches_observed_ber() {
        let obs = observe(Vendor::A, OperatingPoint::with_vdd_reduction(0.30), 1);
        for kind in ErrorModelKind::all() {
            let m = fit_model(kind, &obs, 0);
            let fitted = m.expected_ber();
            let observed = obs.observed_ber();
            assert!(
                (fitted - observed).abs() / observed < 0.3,
                "{kind}: fitted {fitted} vs observed {observed}"
            );
        }
    }

    #[test]
    fn data_dependent_fit_recovers_flip_direction() {
        // Under voltage scaling 1→0 flips dominate, so F_V1 > F_V0 and the
        // fitted model's BER for all-ones data exceeds that of all-zeros.
        let obs = observe(Vendor::A, OperatingPoint::with_vdd_reduction(0.35), 2);
        let m = fit_model(ErrorModelKind::DataDependent, &obs, 0);
        assert!(m.weak_flip_prob(0, 0, true) > m.weak_flip_prob(0, 0, false));
    }

    #[test]
    fn likelihood_prefers_plausible_ber() {
        let obs = observe(Vendor::A, OperatingPoint::with_vdd_reduction(0.30), 3);
        let good = fit_model(ErrorModelKind::Uniform, &obs, 0);
        let poor = good.with_ber((good.expected_ber() * 50.0).min(0.5));
        assert!(
            log_likelihood(&good, &obs) > log_likelihood(&poor, &obs),
            "a model fitted to the data must beat a badly mis-scaled one"
        );
    }

    #[test]
    fn selection_returns_a_well_fitting_model() {
        let obs = observe(Vendor::A, OperatingPoint::with_vdd_reduction(0.30), 4);
        let selected = select_model(&obs, 7);
        let fitted = selected.model.expected_ber();
        let observed = obs.observed_ber();
        assert!((fitted - observed).abs() / observed < 0.3);
    }

    #[test]
    fn selection_prefers_model0_on_ties() {
        // At a direction-balanced operating point the voltage mechanism
        // (1→0 flips dominate) and the tRCD mechanism (0→1 flips dominate)
        // contribute equally, so the data-dependent model has no real edge
        // and the tie must break towards the fast-to-inject Model 0
        // (mirroring the paper's preference).
        let obs = observe(Vendor::A, OperatingPoint::with_reductions(0.30, 4.5), 5);
        let selected = select_model(&obs, 0);
        assert_eq!(selected.model.kind(), ErrorModelKind::Uniform);
    }

    #[test]
    fn selection_detects_strong_data_dependence() {
        // Pure voltage scaling flips stored ones far more often than stored
        // zeros; with enough reads per cell the likelihood must identify
        // Error Model 3 instead of averaging the asymmetry away.
        let dev = ApproxDramDevice::new(Vendor::A, 17);
        let obs = characterize_bank(
            &dev,
            0,
            &OperatingPoint::with_vdd_reduction(0.30),
            &CharacterizeConfig {
                rows_per_pattern: 1,
                bitlines_per_row: 1024,
                reads_per_row: 8,
                seed: 3,
            },
        );
        let selected = select_model(&obs, 0);
        assert_eq!(selected.model.kind(), ErrorModelKind::DataDependent);
        assert!(
            selected.model.weak_flip_prob(0, 0, true) > selected.model.weak_flip_prob(0, 0, false)
        );
    }

    #[test]
    fn fit_all_orders_by_likelihood() {
        let obs = observe(Vendor::B, OperatingPoint::with_trcd_reduction(5.0), 6);
        let fits = fit_all(&obs, 0);
        assert_eq!(fits.len(), 4);
        for pair in fits.windows(2) {
            assert!(pair[0].log_likelihood >= pair[1].log_likelihood);
        }
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 6;
        let p = 0.3;
        let total: f64 = (0..=n).map(|k| binomial_pmf(k, n, p)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
