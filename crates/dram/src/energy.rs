//! DRAMPower-style DRAM energy model with supply-voltage scaling.
//!
//! The paper estimates DRAM energy with DRAMPower (Sections 7.1–7.2) and
//! credits its savings to the quadratic dependence of DRAM power on supply
//! voltage (`P ∝ VDD² · f`, Section 2.3). This model charges per-command
//! energies (activation, read, write) plus background/refresh energy over the
//! elapsed time, and scales the voltage-dependent share of each component by
//! `(VDD / VDD_nominal)²`.

use crate::params::{OperatingPoint, NOMINAL_VDD};
use serde::{Deserialize, Serialize};

/// DRAM device families evaluated by the paper's system studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramKind {
    /// DDR4-2133/2400 module (CPU, GPU and accelerator configurations).
    Ddr4,
    /// LPDDR3-1600 module (the accelerators' low-power configuration).
    Lpddr3,
}

impl DramKind {
    /// Nominal supply voltage for this family (volts). The characterization
    /// in the paper uses 1.35 V as the nominal point for its modules.
    pub fn nominal_vdd(self) -> f32 {
        match self {
            DramKind::Ddr4 => NOMINAL_VDD,
            DramKind::Lpddr3 => 1.20,
        }
    }

    /// Per-command energies `(activation+precharge, read burst, write burst)`
    /// in nanojoules, and background power in watts, at nominal voltage.
    /// Values are representative of DRAMPower outputs for these families.
    fn coefficients(self) -> (f64, f64, f64, f64) {
        match self {
            DramKind::Ddr4 => (2.0, 1.5, 1.6, 0.150),
            DramKind::Lpddr3 => (1.1, 0.8, 0.9, 0.045),
        }
    }
}

/// Counts of DRAM activity over a simulated interval.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AccessCounts {
    /// Row activations (each also charged one precharge).
    pub activations: u64,
    /// 64-byte read bursts.
    pub reads: u64,
    /// 64-byte write bursts.
    pub writes: u64,
    /// Wall-clock time covered by the counts, in nanoseconds.
    pub elapsed_ns: f64,
}

/// Energy consumed, split by component, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Activation + precharge energy.
    pub activation_nj: f64,
    /// Read burst energy.
    pub read_nj: f64,
    /// Write burst energy.
    pub write_nj: f64,
    /// Background + refresh energy over the elapsed time.
    pub background_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.activation_nj + self.read_nj + self.write_nj + self.background_nj
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_nj() * 1e-6
    }
}

/// A DRAM energy model at a particular operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramEnergyModel {
    kind: DramKind,
    vdd: f32,
    /// Fraction of each energy component that scales with `VDD²`; the rest
    /// (I/O, peripheral logic powered from other rails) is voltage
    /// independent.
    vdd_scalable_fraction: f64,
}

impl DramEnergyModel {
    /// Model at nominal voltage.
    pub fn nominal(kind: DramKind) -> Self {
        Self {
            kind,
            vdd: kind.nominal_vdd(),
            vdd_scalable_fraction: 0.75,
        }
    }

    /// Model at the supply voltage of an EDEN operating point (the operating
    /// point's voltage *reduction* is applied to this family's nominal rail).
    pub fn at_operating_point(kind: DramKind, op: &OperatingPoint) -> Self {
        let mut m = Self::nominal(kind);
        m.vdd = (kind.nominal_vdd() - op.vdd_reduction()).max(0.1);
        m
    }

    /// Overrides the voltage-scalable fraction (ablation studies).
    pub fn with_scalable_fraction(mut self, fraction: f64) -> Self {
        self.vdd_scalable_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// The DRAM family.
    pub fn kind(&self) -> DramKind {
        self.kind
    }

    /// The modelled supply voltage.
    pub fn vdd(&self) -> f32 {
        self.vdd
    }

    /// Scaling factor applied to the voltage-dependent share of energy.
    fn vdd_scale(&self) -> f64 {
        let ratio = self.vdd as f64 / self.kind.nominal_vdd() as f64;
        let quad = ratio * ratio;
        self.vdd_scalable_fraction * quad + (1.0 - self.vdd_scalable_fraction)
    }

    /// Energy consumed by the given DRAM activity.
    pub fn energy(&self, counts: &AccessCounts) -> EnergyBreakdown {
        let (act_nj, rd_nj, wr_nj, bg_w) = self.kind.coefficients();
        let scale = self.vdd_scale();
        EnergyBreakdown {
            activation_nj: counts.activations as f64 * act_nj * scale,
            read_nj: counts.reads as f64 * rd_nj * scale,
            write_nj: counts.writes as f64 * wr_nj * scale,
            background_nj: bg_w * counts.elapsed_ns * scale,
        }
    }

    /// Fractional DRAM energy saving of this model relative to nominal
    /// operation with the same activity.
    pub fn savings_vs_nominal(&self, counts: &AccessCounts) -> f64 {
        let nominal = Self::nominal(self.kind).energy(counts).total_nj();
        if nominal == 0.0 {
            return 0.0;
        }
        1.0 - self.energy(counts).total_nj() / nominal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts() -> AccessCounts {
        AccessCounts {
            activations: 10_000,
            reads: 80_000,
            writes: 20_000,
            elapsed_ns: 1_000_000.0,
        }
    }

    #[test]
    fn nominal_energy_is_positive_and_additive() {
        let e = DramEnergyModel::nominal(DramKind::Ddr4).energy(&counts());
        assert!(
            e.activation_nj > 0.0 && e.read_nj > 0.0 && e.write_nj > 0.0 && e.background_nj > 0.0
        );
        assert!(
            (e.total_nj() - (e.activation_nj + e.read_nj + e.write_nj + e.background_nj)).abs()
                < 1e-9
        );
    }

    #[test]
    fn voltage_reduction_saves_energy_quadratically() {
        let c = counts();
        let small = DramEnergyModel::at_operating_point(
            DramKind::Ddr4,
            &OperatingPoint::with_vdd_reduction(0.10),
        )
        .savings_vs_nominal(&c);
        let large = DramEnergyModel::at_operating_point(
            DramKind::Ddr4,
            &OperatingPoint::with_vdd_reduction(0.35),
        )
        .savings_vs_nominal(&c);
        assert!(small > 0.0 && large > small);
        // −0.35 V on a 1.35 V rail with 75% scalable energy ≈ 34% savings,
        // the right ballpark for the paper's 21–37% system results.
        assert!(large > 0.25 && large < 0.45, "savings {large}");
    }

    #[test]
    fn trcd_reduction_alone_does_not_change_energy_per_access() {
        let c = counts();
        let m = DramEnergyModel::at_operating_point(
            DramKind::Ddr4,
            &OperatingPoint::with_trcd_reduction(5.0),
        );
        assert!(m.savings_vs_nominal(&c).abs() < 1e-9);
    }

    #[test]
    fn lpddr3_consumes_less_than_ddr4() {
        let c = counts();
        let ddr4 = DramEnergyModel::nominal(DramKind::Ddr4)
            .energy(&c)
            .total_nj();
        let lp = DramEnergyModel::nominal(DramKind::Lpddr3)
            .energy(&c)
            .total_nj();
        assert!(lp < ddr4);
    }

    #[test]
    fn scalable_fraction_bounds_savings() {
        let c = counts();
        let op = OperatingPoint::with_vdd_reduction(0.35);
        let all = DramEnergyModel::at_operating_point(DramKind::Ddr4, &op)
            .with_scalable_fraction(1.0)
            .savings_vs_nominal(&c);
        let none = DramEnergyModel::at_operating_point(DramKind::Ddr4, &op)
            .with_scalable_fraction(0.0)
            .savings_vs_nominal(&c);
        assert!(none.abs() < 1e-9);
        assert!(
            all > 0.4,
            "fully scalable savings should approach 1-(v/vn)^2, got {all}"
        );
    }

    #[test]
    fn zero_activity_consumes_nothing() {
        let e = DramEnergyModel::nominal(DramKind::Ddr4).energy(&AccessCounts::default());
        assert_eq!(e.total_nj(), 0.0);
    }
}
