//! Experimental DRAM characterization (Sections 3.4 and 6.2).
//!
//! EDEN obtains the BER characteristics of a device (in aggregate and per
//! partition) by writing known data patterns into rows, reading them back
//! with reduced parameters several times, and recording which cells flipped.
//! The records feed the error-model fitting of [`crate::fit`] and the
//! per-partition error profile used by DNN→DRAM mapping.

use crate::device::ApproxDramDevice;
use crate::geometry::Partition;
use crate::params::OperatingPoint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The data patterns used by the characterization sweep (Figure 5).
pub const DATA_PATTERNS: [u8; 4] = [0xFF, 0xCC, 0xAA, 0x00];

/// Configuration of a characterization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharacterizeConfig {
    /// Rows written per data pattern (each is also written inverted, per the
    /// paper's two-consecutive-rows methodology).
    pub rows_per_pattern: usize,
    /// How many bitlines of each row to test (testing a full 16 Kbit row for
    /// every operating point is unnecessary for stable estimates).
    pub bitlines_per_row: usize,
    /// Repeated reads of each row (weak cells fail probabilistically, so
    /// repeated reads separate the weak-cell fraction `P` from the weak-cell
    /// failure probability `F`).
    pub reads_per_row: usize,
    /// RNG seed for the read process.
    pub seed: u64,
}

impl Default for CharacterizeConfig {
    fn default() -> Self {
        Self {
            rows_per_pattern: 2,
            bitlines_per_row: 2048,
            reads_per_row: 4,
            seed: 0,
        }
    }
}

/// Observations for one cell across repeated reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Row the cell belongs to.
    pub row: u64,
    /// Bitline the cell sits on.
    pub bitline: u64,
    /// The value stored in the cell during the test.
    pub stored_one: bool,
    /// How many of the reads returned a flipped value.
    pub flips: u32,
    /// How many reads were performed.
    pub reads: u32,
}

/// The result of characterizing one bank (or partition) at one operating
/// point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationResult {
    /// Operating point under test.
    pub op: OperatingPoint,
    /// Per-cell observations.
    pub cells: Vec<CellRecord>,
}

impl CharacterizationResult {
    /// Total number of single-bit read observations.
    pub fn total_reads(&self) -> u64 {
        self.cells.iter().map(|c| c.reads as u64).sum()
    }

    /// Total number of observed bit flips.
    pub fn total_flips(&self) -> u64 {
        self.cells.iter().map(|c| c.flips as u64).sum()
    }

    /// Observed bit error rate (flips per read bit).
    pub fn observed_ber(&self) -> f64 {
        let reads = self.total_reads();
        if reads == 0 {
            return 0.0;
        }
        self.total_flips() as f64 / reads as f64
    }

    /// Observed BER restricted to cells storing the given value.
    pub fn ber_for_stored(&self, stored_one: bool) -> f64 {
        let (flips, reads) = self
            .cells
            .iter()
            .filter(|c| c.stored_one == stored_one)
            .fold((0u64, 0u64), |(f, r), c| {
                (f + c.flips as u64, r + c.reads as u64)
            });
        if reads == 0 {
            0.0
        } else {
            flips as f64 / reads as f64
        }
    }

    /// Number of distinct cells that flipped at least once (the empirical
    /// weak-cell set).
    pub fn weak_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.flips > 0).count()
    }

    /// Total flips per bitline index.
    pub fn flips_per_bitline(&self) -> Vec<(u64, u64)> {
        aggregate(self.cells.iter().map(|c| (c.bitline, c.flips as u64)))
    }

    /// Total flips per row index.
    pub fn flips_per_row(&self) -> Vec<(u64, u64)> {
        aggregate(self.cells.iter().map(|c| (c.row, c.flips as u64)))
    }
}

fn aggregate(items: impl Iterator<Item = (u64, u64)>) -> Vec<(u64, u64)> {
    let mut map = std::collections::BTreeMap::new();
    for (key, value) in items {
        *map.entry(key).or_insert(0u64) += value;
    }
    map.into_iter().collect()
}

/// Characterizes one bank of a device at one operating point.
pub fn characterize_bank(
    device: &ApproxDramDevice,
    bank: u64,
    op: &OperatingPoint,
    cfg: &CharacterizeConfig,
) -> CharacterizationResult {
    characterize_rows(device, bank, 0, op, cfg)
}

/// Characterizes rows starting at `base_row` of `bank` (used to characterize
/// individual partitions).
pub fn characterize_rows(
    device: &ApproxDramDevice,
    bank: u64,
    base_row: u64,
    op: &OperatingPoint,
    cfg: &CharacterizeConfig,
) -> CharacterizationResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ bank.rotate_left(17) ^ base_row);
    let bitlines = cfg.bitlines_per_row.min(device.geometry().row_bits());
    let mut cells = Vec::new();
    let mut row = base_row;
    for &pattern in &DATA_PATTERNS {
        // The paper populates two consecutive rows with inverted data
        // patterns for worst-case evaluation.
        for row_pattern in [pattern, !pattern] {
            for _ in 0..cfg.rows_per_pattern {
                let mut flips = vec![0u32; bitlines];
                for _ in 0..cfg.reads_per_row {
                    for (bitline, flip_count) in flips.iter_mut().enumerate() {
                        let stored_one = (row_pattern >> (bitline % 8)) & 1 == 1;
                        if device.read_bit_flips(
                            bank,
                            row,
                            bitline as u64,
                            stored_one,
                            op,
                            &mut rng,
                        ) {
                            *flip_count += 1;
                        }
                    }
                }
                for (bitline, &flip_count) in flips.iter().enumerate() {
                    cells.push(CellRecord {
                        row,
                        bitline: bitline as u64,
                        stored_one: (row_pattern >> (bitline % 8)) & 1 == 1,
                        flips: flip_count,
                        reads: cfg.reads_per_row as u32,
                    });
                }
                row += 1;
            }
        }
    }
    CharacterizationResult { op: *op, cells }
}

/// Measures the BER of one data pattern at one operating point (the quantity
/// plotted in Figure 5).
pub fn measured_pattern_ber(
    device: &ApproxDramDevice,
    pattern: u8,
    op: &OperatingPoint,
    cfg: &CharacterizeConfig,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ pattern as u64);
    let bitlines = cfg.bitlines_per_row.min(device.geometry().row_bits());
    let mut flips = 0u64;
    let mut reads = 0u64;
    for row in 0..(cfg.rows_per_pattern as u64 * 2) {
        for _ in 0..cfg.reads_per_row {
            for bitline in 0..bitlines {
                let stored_one = (pattern >> (bitline % 8)) & 1 == 1;
                if device.read_bit_flips(0, row, bitline as u64, stored_one, op, &mut rng) {
                    flips += 1;
                }
                reads += 1;
            }
        }
    }
    flips as f64 / reads.max(1) as f64
}

/// Per-partition BER profile of a device across candidate operating points —
/// the "DRAM Error Profile" consumed by DNN→DRAM mapping (Figure 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramErrorProfile {
    /// Partitions covered by the profile.
    pub partitions: Vec<Partition>,
    /// Candidate operating points (same order as the inner BER vectors).
    pub operating_points: Vec<OperatingPoint>,
    /// `ber[partition][op]` — measured BER of each partition at each point.
    pub ber: Vec<Vec<f64>>,
}

impl DramErrorProfile {
    /// Characterizes the given partitions of a device at each operating point.
    pub fn characterize(
        device: &ApproxDramDevice,
        partitions: &[Partition],
        operating_points: &[OperatingPoint],
        cfg: &CharacterizeConfig,
    ) -> Self {
        let mut ber = Vec::with_capacity(partitions.len());
        for p in partitions {
            let base_row = (p.first_subarray * device.geometry().rows_per_subarray) as u64;
            let mut row = Vec::with_capacity(operating_points.len());
            for op in operating_points {
                let result = characterize_rows(device, p.bank as u64, base_row, op, cfg);
                row.push(result.observed_ber());
            }
            ber.push(row);
        }
        Self {
            partitions: partitions.to_vec(),
            operating_points: operating_points.to_vec(),
            ber,
        }
    }

    /// Measured BER of a partition at the `op_index`-th operating point.
    pub fn ber(&self, partition_index: usize, op_index: usize) -> f64 {
        self.ber[partition_index][op_index]
    }

    /// Mean BER across all partitions at the `op_index`-th operating point.
    pub fn module_ber(&self, op_index: usize) -> f64 {
        if self.ber.is_empty() {
            return 0.0;
        }
        self.ber.iter().map(|row| row[op_index]).sum::<f64>() / self.ber.len() as f64
    }

    /// Number of partitions in the profile.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{partitions, DramGeometry, PartitionGranularity};
    use crate::vendor::Vendor;

    fn small_cfg() -> CharacterizeConfig {
        CharacterizeConfig {
            rows_per_pattern: 1,
            bitlines_per_row: 512,
            reads_per_row: 3,
            seed: 1,
        }
    }

    #[test]
    fn characterization_ber_tracks_device_expectation() {
        let dev = ApproxDramDevice::new(Vendor::A, 7);
        let op = OperatingPoint::with_vdd_reduction(0.30);
        let result = characterize_bank(&dev, 0, &op, &small_cfg());
        let observed = result.observed_ber();
        let expected = dev.expected_ber(&op);
        assert!(
            (observed - expected).abs() / expected < 0.5,
            "observed {observed} vs expected {expected}"
        );
        assert!(result.weak_cells() > 0);
        assert_eq!(result.total_reads(), result.cells.len() as u64 * 3);
    }

    #[test]
    fn nominal_characterization_sees_no_errors() {
        let dev = ApproxDramDevice::new(Vendor::C, 3);
        let result = characterize_bank(&dev, 0, &OperatingPoint::nominal(), &small_cfg());
        assert_eq!(result.total_flips(), 0);
        assert_eq!(result.observed_ber(), 0.0);
    }

    #[test]
    fn pattern_dependence_is_observable() {
        let dev = ApproxDramDevice::new(Vendor::A, 9);
        let op = OperatingPoint::with_vdd_reduction(0.35);
        let cfg = small_cfg();
        let ones = measured_pattern_ber(&dev, 0xFF, &op, &cfg);
        let zeros = measured_pattern_ber(&dev, 0x00, &op, &cfg);
        assert!(
            ones > zeros,
            "voltage scaling: 0xFF ({ones}) should exceed 0x00 ({zeros})"
        );
    }

    #[test]
    fn stored_value_split_covers_all_cells() {
        let dev = ApproxDramDevice::new(Vendor::B, 2);
        let op = OperatingPoint::with_trcd_reduction(5.0);
        let result = characterize_bank(&dev, 1, &op, &small_cfg());
        let ones = result.cells.iter().filter(|c| c.stored_one).count();
        let zeros = result.cells.len() - ones;
        // The pattern set {0xFF, 0xCC, 0xAA, 0x00} plus inverses is balanced.
        assert_eq!(ones, zeros);
        // tRCD scaling prefers 0→1 flips.
        assert!(result.ber_for_stored(false) > result.ber_for_stored(true));
    }

    #[test]
    fn profile_covers_partitions_and_points() {
        let dev = ApproxDramDevice::new(Vendor::A, 4);
        let parts = partitions(&DramGeometry::ddr4_module(), PartitionGranularity::Bank);
        let ops = vec![
            OperatingPoint::nominal(),
            OperatingPoint::with_vdd_reduction(0.25),
            OperatingPoint::with_vdd_reduction(0.35),
        ];
        let profile = DramErrorProfile::characterize(&dev, &parts[..4], &ops, &small_cfg());
        assert_eq!(profile.partition_count(), 4);
        assert_eq!(profile.ber.len(), 4);
        assert_eq!(profile.ber[0].len(), 3);
        // BER grows with the aggressiveness of the operating point.
        for p in 0..4 {
            assert!(profile.ber(p, 0) <= profile.ber(p, 1));
            assert!(profile.ber(p, 1) <= profile.ber(p, 2));
        }
        assert!(profile.module_ber(2) > profile.module_ber(0));
    }

    #[test]
    fn partitions_differ_due_to_spatial_variation() {
        let dev = ApproxDramDevice::new(Vendor::A, 11);
        let parts = partitions(&DramGeometry::ddr4_module(), PartitionGranularity::Bank);
        let ops = vec![OperatingPoint::with_vdd_reduction(0.30)];
        let profile = DramErrorProfile::characterize(&dev, &parts[..6], &ops, &small_cfg());
        let bers: Vec<f64> = (0..6).map(|p| profile.ber(p, 0)).collect();
        let min = bers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = bers.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "partition BERs should not all be identical");
    }
}
