//! A simulated approximate DRAM device.
//!
//! The paper characterizes real DDR3/DDR4 modules through SoftMC on an FPGA
//! (Section 6.1). This reproduction substitutes a simulated device whose bit
//! flips have the same *statistics*: the overall BER follows the vendor's
//! voltage/latency curves (Figure 5), flips prefer the data-dependent
//! direction of the active mechanism, weak cells are stable across reads, and
//! weakness has mild spatial structure across bitlines and rows (the locality
//! Chang et al. and Lee et al. report, which the paper's Error Models 1 and 2
//! capture). See `DESIGN.md` for the substitution rationale.

use crate::error_model::INJECT_CHUNK_VALUES;
use crate::geometry::{DramGeometry, Partition};
use crate::params::OperatingPoint;
use crate::util::{seed_mix, unit_for};
use crate::vendor::{Vendor, VendorProfile};
use eden_tensor::{CorruptionOverlay, QuantTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Fraction of bitlines that are distinctly weaker than average.
const HOT_BITLINE_FRACTION: f64 = 0.06;
/// Weakness multiplier of a hot bitline.
const HOT_BITLINE_FACTOR: f64 = 2.5;
/// Fraction of rows that are distinctly weaker than average.
const HOT_ROW_FRACTION: f64 = 0.04;
/// Weakness multiplier of a hot row.
const HOT_ROW_FACTOR: f64 = 2.0;

/// A simulated approximate DRAM module of a particular vendor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApproxDramDevice {
    geometry: DramGeometry,
    vendor: Vendor,
    profile: VendorProfile,
    seed: u64,
}

impl ApproxDramDevice {
    /// Creates a device of the given vendor with the default DDR4 geometry.
    pub fn new(vendor: Vendor, seed: u64) -> Self {
        Self::with_geometry(vendor, DramGeometry::ddr4_module(), seed)
    }

    /// Creates a device with an explicit geometry.
    pub fn with_geometry(vendor: Vendor, geometry: DramGeometry, seed: u64) -> Self {
        Self {
            geometry,
            vendor,
            profile: vendor.profile(),
            seed,
        }
    }

    /// The device vendor.
    pub fn vendor(&self) -> Vendor {
        self.vendor
    }

    /// The device geometry.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// The device seed (identifies this particular module's weak cells).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The vendor BER profile of the device.
    pub fn profile(&self) -> &VendorProfile {
        &self.profile
    }

    /// Module-average BER at an operating point (50/50 data).
    pub fn expected_ber(&self, op: &OperatingPoint) -> f64 {
        self.profile.ber(op)
    }

    /// Spatial weakness multiplier of a cell (bitline factor × row factor).
    fn spatial_factor(&self, bank: u64, row: u64, bitline: u64) -> f64 {
        let cold_bl =
            (1.0 - HOT_BITLINE_FRACTION * HOT_BITLINE_FACTOR) / (1.0 - HOT_BITLINE_FRACTION);
        let cold_row = (1.0 - HOT_ROW_FRACTION * HOT_ROW_FACTOR) / (1.0 - HOT_ROW_FRACTION);
        let bl_factor = if unit_for(self.seed ^ 0xB17, bank, bitline, 0) < HOT_BITLINE_FRACTION {
            HOT_BITLINE_FACTOR
        } else {
            cold_bl
        };
        let row_factor = if unit_for(self.seed ^ 0x40D, bank, row, 0) < HOT_ROW_FRACTION {
            HOT_ROW_FACTOR
        } else {
            cold_row
        };
        bl_factor * row_factor
    }

    /// Whether the cell at `(bank, row, bitline)` is weak at the given
    /// operating point. Weak sets are nested: a cell weak at a mild operating
    /// point stays weak at a more aggressive one.
    pub fn is_weak(&self, bank: u64, row: u64, bitline: u64, op: &OperatingPoint) -> bool {
        let base_p = self.expected_ber(op) / self.profile.weak_cell_flip_prob;
        let p = (base_p * self.spatial_factor(bank, row, bitline)).min(1.0);
        unit_for(self.seed, bank.wrapping_mul(1 << 40) ^ row, bitline, 0xCE11) < p
    }

    /// Reads one bit: returns `true` if the stored value is corrupted (flips)
    /// on this access.
    pub fn read_bit_flips(
        &self,
        bank: u64,
        row: u64,
        bitline: u64,
        stored_one: bool,
        op: &OperatingPoint,
        rng: &mut StdRng,
    ) -> bool {
        if !self.is_weak(bank, row, bitline, op) {
            return false;
        }
        // Direction preference: scale the weak-cell flip probability by the
        // ratio of the per-value BER to the average BER.
        let avg = self.expected_ber(op).max(1e-18);
        let dir = self.profile.ber_for_stored(op, stored_one) / avg;
        let f = (self.profile.weak_cell_flip_prob * dir).min(1.0);
        rng.gen::<f64>() < f
    }

    /// Reads a stored tensor placed contiguously in `partition` at operating
    /// point `op`, corrupting it in place exactly as the device would.
    ///
    /// Returns the number of bit flips introduced.
    pub fn read_tensor(
        &self,
        tensor: &mut QuantTensor,
        partition: &Partition,
        op: &OperatingPoint,
        rng: &mut StdRng,
    ) -> u64 {
        self.read_tensor_at(tensor, partition, 0, op, rng)
    }

    /// Like [`ApproxDramDevice::read_tensor`], but with the tensor placed
    /// `row_offset` rows into the partition, so different data types can
    /// occupy their own rows of the same partition, as a real allocator
    /// would place them. Rows wrap modulo the partition size (mirroring
    /// [`crate::geometry::bit_address`]), so placements whose combined
    /// footprint exceeds the partition alias earlier rows.
    pub fn read_tensor_at(
        &self,
        tensor: &mut QuantTensor,
        partition: &Partition,
        row_offset: u64,
        op: &OperatingPoint,
        rng: &mut StdRng,
    ) -> u64 {
        let stream_seed = rng.gen::<u64>();
        self.read_tensor_at_seeded(tensor, partition, row_offset, op, stream_seed)
    }

    /// Like [`ApproxDramDevice::read_tensor_at`], but drawing per-access
    /// failures from independent per-chunk RNG streams derived from
    /// `stream_seed` (chunks of [`INJECT_CHUNK_VALUES`] values, corrupted in
    /// parallel on the current `eden-par` pool). The result is bit-identical
    /// for any thread count — weak cells are a pure function of the device
    /// seed and the address, and per-access failure draws are a pure function
    /// of the stream seed and the value's position.
    pub fn read_tensor_at_seeded(
        &self,
        tensor: &mut QuantTensor,
        partition: &Partition,
        row_offset: u64,
        op: &OperatingPoint,
        stream_seed: u64,
    ) -> u64 {
        if op.is_nominal() {
            return 0;
        }
        let bits = tensor.bits_per_value();
        let row_bits = self.geometry.row_bits() as u64;
        let partition_rows = (partition.subarrays * self.geometry.rows_per_subarray) as u64;
        let base_row = (partition.first_subarray * self.geometry.rows_per_subarray) as u64;
        let flips = eden_par::par_map_chunks_mut(
            tensor.stored_mut(),
            INJECT_CHUNK_VALUES,
            |chunk_idx, chunk| {
                let mut rng = StdRng::seed_from_u64(seed_mix(stream_seed, &[chunk_idx as u64]));
                let first_value = chunk_idx * INJECT_CHUNK_VALUES;
                let mut chunk_flips = 0u64;
                for (j, word) in chunk.iter_mut().enumerate() {
                    let i = first_value + j;
                    for b in 0..bits {
                        let offset = i as u64 * bits as u64 + b as u64;
                        let row = base_row + (row_offset + offset / row_bits) % partition_rows;
                        let bitline = offset % row_bits;
                        let stored_one = (*word >> b) & 1 == 1;
                        if self.read_bit_flips(
                            partition.bank as u64,
                            row,
                            bitline,
                            stored_one,
                            op,
                            &mut rng,
                        ) {
                            *word ^= 1 << b;
                            chunk_flips += 1;
                        }
                    }
                }
                chunk_flips
            },
        );
        flips.iter().sum()
    }

    /// The sparse-overlay form of [`ApproxDramDevice::read_tensor_at_seeded`]:
    /// computes the [`CorruptionOverlay`] the read would produce on `clean`
    /// instead of mutating it. Device failures are resampled per read and
    /// direction-dependent on the live stored bits, so there is no
    /// precomputable weak map to consume — the overlay is derived by
    /// corrupting a copy and diffing, which is O(total bits) like every
    /// device read, but lets consumers apply/revert in O(flips) against
    /// their persistent clean state.
    pub fn read_overlay_at_seeded(
        &self,
        clean: &QuantTensor,
        partition: &Partition,
        row_offset: u64,
        op: &OperatingPoint,
        stream_seed: u64,
    ) -> CorruptionOverlay {
        if op.is_nominal() {
            return CorruptionOverlay::empty(clean.len(), clean.bits_per_value());
        }
        let mut corrupted = clean.clone();
        let flips =
            self.read_tensor_at_seeded(&mut corrupted, partition, row_offset, op, stream_seed);
        let overlay = CorruptionOverlay::from_diff(clean, &corrupted);
        debug_assert_eq!(overlay.bit_flips(), flips);
        overlay
    }

    /// Reads a full row previously written with a repeating byte `pattern`,
    /// returning the bitline positions whose value was corrupted. Used by
    /// DRAM characterization (Section 3.4).
    pub fn read_pattern_row(
        &self,
        bank: u64,
        row: u64,
        pattern: u8,
        op: &OperatingPoint,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let mut flipped = Vec::new();
        for bitline in 0..self.geometry.row_bits() {
            let stored_one = (pattern >> (bitline % 8)) & 1 == 1;
            if self.read_bit_flips(bank, row, bitline as u64, stored_one, op, rng) {
                flipped.push(bitline);
            }
        }
        flipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{partitions, PartitionGranularity};
    use eden_tensor::{Precision, Tensor};
    use rand::SeedableRng;

    fn stored(n: usize) -> QuantTensor {
        let t = Tensor::from_vec(
            (0..n).map(|i| ((i * 7919) % 255) as f32 - 127.0).collect(),
            &[n],
        );
        QuantTensor::quantize(&t, Precision::Int8)
    }

    fn first_partition() -> Partition {
        partitions(&DramGeometry::ddr4_module(), PartitionGranularity::Bank)[0]
    }

    #[test]
    fn nominal_reads_are_error_free() {
        let dev = ApproxDramDevice::new(Vendor::A, 1);
        let clean = stored(4096);
        let mut t = clean.clone();
        let mut rng = StdRng::seed_from_u64(0);
        let flips = dev.read_tensor(
            &mut t,
            &first_partition(),
            &OperatingPoint::nominal(),
            &mut rng,
        );
        assert_eq!(flips, 0);
        assert_eq!(t, clean);
    }

    #[test]
    fn observed_ber_tracks_vendor_curve() {
        let dev = ApproxDramDevice::new(Vendor::A, 2);
        let op = OperatingPoint::with_vdd_reduction(0.30);
        let clean = stored(40_000);
        let mut t = clean.clone();
        let mut rng = StdRng::seed_from_u64(1);
        let flips = dev.read_tensor(&mut t, &first_partition(), &op, &mut rng);
        let observed = flips as f64 / clean.total_bits() as f64;
        let expected = dev.expected_ber(&op);
        assert!(
            (observed - expected).abs() / expected < 0.4,
            "observed {observed:.4} vs expected {expected:.4}"
        );
    }

    #[test]
    fn more_aggressive_operating_points_cause_more_errors() {
        let dev = ApproxDramDevice::new(Vendor::A, 3);
        let count = |dv: f32| {
            let mut t = stored(20_000);
            let mut rng = StdRng::seed_from_u64(7);
            dev.read_tensor(
                &mut t,
                &first_partition(),
                &OperatingPoint::with_vdd_reduction(dv),
                &mut rng,
            )
        };
        assert!(count(0.35) > count(0.25));
        assert!(count(0.25) > count(0.10));
    }

    #[test]
    fn weak_cells_are_nested_across_operating_points() {
        let dev = ApproxDramDevice::new(Vendor::B, 4);
        let mild = OperatingPoint::with_vdd_reduction(0.20);
        let aggressive = OperatingPoint::with_vdd_reduction(0.35);
        let mut nested = true;
        for row in 0..64u64 {
            for bl in 0..256u64 {
                if dev.is_weak(0, row, bl, &mild) && !dev.is_weak(0, row, bl, &aggressive) {
                    nested = false;
                }
            }
        }
        assert!(
            nested,
            "cells weak at a mild point must stay weak at an aggressive one"
        );
    }

    #[test]
    fn different_devices_have_different_weak_cells() {
        let a = ApproxDramDevice::new(Vendor::A, 10);
        let b = ApproxDramDevice::new(Vendor::A, 11);
        let op = OperatingPoint::with_vdd_reduction(0.30);
        let weak_map = |d: &ApproxDramDevice| {
            (0..64u64)
                .flat_map(|r| (0..64u64).map(move |c| (r, c)))
                .filter(|&(r, c)| d.is_weak(0, r, c, &op))
                .count()
        };
        // Similar counts, but different positions — compare via symmetric difference.
        let mut differing = 0;
        for r in 0..64u64 {
            for c in 0..64u64 {
                if a.is_weak(0, r, c, &op) != b.is_weak(0, r, c, &op) {
                    differing += 1;
                }
            }
        }
        assert!(differing > 0);
        assert!(weak_map(&a) > 0 && weak_map(&b) > 0);
    }

    #[test]
    fn pattern_rows_show_data_dependence() {
        // Under voltage scaling all-ones rows fail more than all-zeros rows.
        let dev = ApproxDramDevice::new(Vendor::A, 5);
        let op = OperatingPoint::with_vdd_reduction(0.35);
        let mut rng = StdRng::seed_from_u64(3);
        let mut ones = 0usize;
        let mut zeros = 0usize;
        for row in 0..32 {
            ones += dev.read_pattern_row(0, row, 0xFF, &op, &mut rng).len();
            zeros += dev.read_pattern_row(0, row, 0x00, &op, &mut rng).len();
        }
        assert!(
            ones > zeros,
            "0xFF flips ({ones}) should exceed 0x00 flips ({zeros})"
        );
    }

    #[test]
    fn vendor_b_is_leakier_than_vendor_c() {
        let op = OperatingPoint::with_vdd_reduction(0.25);
        let flips = |v: Vendor| {
            let dev = ApproxDramDevice::new(v, 6);
            let mut t = stored(20_000);
            let mut rng = StdRng::seed_from_u64(9);
            dev.read_tensor(&mut t, &first_partition(), &op, &mut rng)
        };
        assert!(flips(Vendor::B) > flips(Vendor::C));
    }
}
