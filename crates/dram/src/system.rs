//! Multi-module memory systems.
//!
//! EDEN's fine-grained mapping (Section 3.4, Figure 12) generalizes beyond a
//! single DRAM module: a real deployment has several modules/channels, each
//! with its own vendor error behaviour, geometry and independently tunable
//! (VDD, tRCD) operating point per partition. [`DramModule`] bundles one
//! characterized device with its partitions and candidate operating points;
//! [`MemorySystem`] composes several modules and addresses their partitions
//! through flat `(module, partition)` slots.

use crate::characterize::{CharacterizeConfig, DramErrorProfile};
use crate::device::ApproxDramDevice;
use crate::geometry::{partitions, Partition, PartitionGranularity};
use crate::params::OperatingPoint;
use serde::{Deserialize, Serialize};

/// One DRAM module of a [`MemorySystem`]: a characterized approximate device
/// plus the partitions and candidate operating points mapping may use.
///
/// The per-partition × per-operating-point bit error rates live in the
/// embedded [`DramErrorProfile`]; the device itself is retained so placement
/// can read real (seeded, reproducible) corruption for any partition at any
/// of the module's operating points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramModule {
    device: ApproxDramDevice,
    profile: DramErrorProfile,
}

impl DramModule {
    /// Characterizes `parts` of `device` at each of `operating_points` and
    /// bundles the result into a module.
    pub fn characterize(
        device: ApproxDramDevice,
        parts: &[Partition],
        operating_points: &[OperatingPoint],
        cfg: &CharacterizeConfig,
    ) -> Self {
        let profile = DramErrorProfile::characterize(&device, parts, operating_points, cfg);
        Self { device, profile }
    }

    /// Bank-granular module over the device's own geometry, keeping the first
    /// `banks` bank partitions (a small count keeps characterization cheap in
    /// tests and figures while exercising real addresses).
    pub fn bank_partitioned(
        device: ApproxDramDevice,
        banks: usize,
        operating_points: &[OperatingPoint],
        cfg: &CharacterizeConfig,
    ) -> Self {
        let parts = partitions(device.geometry(), PartitionGranularity::Bank);
        assert!(
            banks >= 1 && banks <= parts.len(),
            "bank count {banks} outside 1..={}",
            parts.len()
        );
        Self::characterize(device, &parts[..banks], operating_points, cfg)
    }

    /// The underlying approximate device.
    pub fn device(&self) -> &ApproxDramDevice {
        &self.device
    }

    /// The module's characterized error profile.
    pub fn profile(&self) -> &DramErrorProfile {
        &self.profile
    }

    /// The module's partitions (in profile order).
    pub fn partitions(&self) -> &[Partition] {
        &self.profile.partitions
    }

    /// The module's candidate operating points (in profile order).
    pub fn operating_points(&self) -> &[OperatingPoint] {
        &self.profile.operating_points
    }

    /// Measured BER of partition `p` at operating point `o`.
    pub fn ber(&self, p: usize, o: usize) -> f64 {
        self.profile.ber(p, o)
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.profile.partition_count()
    }

    /// Total capacity of the module's partitions in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.partitions().iter().map(|p| p.capacity_bytes).sum()
    }
}

/// A memory system of one or more [`DramModule`]s.
///
/// Partitions across the whole system are addressed by `(module, partition)`
/// pairs — "slots" — enumerated in deterministic module-major order by
/// [`MemorySystem::slots`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySystem {
    modules: Vec<DramModule>,
}

impl MemorySystem {
    /// Builds a system from its modules.
    ///
    /// # Panics
    ///
    /// Panics if `modules` is empty.
    pub fn new(modules: Vec<DramModule>) -> Self {
        assert!(
            !modules.is_empty(),
            "a memory system needs at least one module"
        );
        Self { modules }
    }

    /// The system's modules.
    pub fn modules(&self) -> &[DramModule] {
        &self.modules
    }

    /// Module `m`.
    pub fn module(&self, m: usize) -> &DramModule {
        &self.modules[m]
    }

    /// Number of modules.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Total number of `(module, partition)` slots.
    pub fn slot_count(&self) -> usize {
        self.modules.iter().map(|m| m.partition_count()).sum()
    }

    /// All `(module, partition)` slots in module-major order — the canonical
    /// iteration order every deterministic search over the system uses.
    pub fn slots(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.modules
            .iter()
            .enumerate()
            .flat_map(|(m, module)| (0..module.partition_count()).map(move |p| (m, p)))
    }

    /// Total capacity of every module's partitions in bytes.
    pub fn total_capacity_bytes(&self) -> u64 {
        self.modules.iter().map(|m| m.capacity_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendor::Vendor;

    fn tiny_cfg() -> CharacterizeConfig {
        CharacterizeConfig {
            rows_per_pattern: 1,
            bitlines_per_row: 128,
            reads_per_row: 1,
            seed: 5,
        }
    }

    fn two_module_system() -> MemorySystem {
        let ops_a = vec![
            OperatingPoint::nominal(),
            OperatingPoint::with_vdd_reduction(0.20),
        ];
        let ops_b = vec![
            OperatingPoint::nominal(),
            OperatingPoint::with_trcd_reduction(4.0),
        ];
        MemorySystem::new(vec![
            DramModule::bank_partitioned(
                ApproxDramDevice::new(Vendor::A, 11),
                2,
                &ops_a,
                &tiny_cfg(),
            ),
            DramModule::bank_partitioned(
                ApproxDramDevice::new(Vendor::B, 12),
                3,
                &ops_b,
                &tiny_cfg(),
            ),
        ])
    }

    #[test]
    fn slots_enumerate_module_major() {
        let sys = two_module_system();
        assert_eq!(sys.module_count(), 2);
        assert_eq!(sys.slot_count(), 5);
        let slots: Vec<_> = sys.slots().collect();
        assert_eq!(slots, vec![(0, 0), (0, 1), (1, 0), (1, 1), (1, 2)]);
    }

    #[test]
    fn modules_keep_their_own_vendors_and_profiles() {
        let sys = two_module_system();
        assert_eq!(sys.module(0).device().vendor(), Vendor::A);
        assert_eq!(sys.module(1).device().vendor(), Vendor::B);
        assert_eq!(sys.module(0).operating_points().len(), 2);
        // Reduced points produce strictly more errors than nominal on every
        // partition of both modules.
        for module in sys.modules() {
            for p in 0..module.partition_count() {
                assert_eq!(module.ber(p, 0), 0.0, "nominal point must be error-free");
                assert!(module.ber(p, 1) > 0.0, "reduced point must show errors");
            }
        }
    }

    #[test]
    fn capacity_sums_partitions() {
        let sys = two_module_system();
        let per_bank = sys.module(0).partitions()[0].capacity_bytes;
        assert_eq!(sys.module(0).capacity_bytes(), 2 * per_bank);
        assert_eq!(sys.total_capacity_bytes(), 5 * per_bank);
    }

    #[test]
    #[should_panic]
    fn empty_system_rejected() {
        MemorySystem::new(Vec::new());
    }
}
