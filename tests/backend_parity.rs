//! Backend parity: the native integer engine against the simulated-f32 path.
//!
//! The two backends consume identical corrupted stored bits but differ in
//! arithmetic: the simulated path dequantizes and accumulates in f32
//! (rounding after every multiply–add), while the native path accumulates
//! the quantized integers exactly and applies the scale once. Because EDEN
//! re-quantizes every layer boundary, a 1-ULP f32 difference can flip a
//! stored LSB and be amplified by a whole quantization step downstream —
//! so bit-identical *logits* across backends are unattainable by
//! construction. What this suite pins instead is every invariant that *is*
//! exact, plus a precision-aware envelope for the rest:
//!
//! 1. `NativeInt` is **bit-identical to a naive scalar integer reference**
//!    (independent reimplementation of the quantized semantics) across
//!    int4/int8/int16, odd shapes and fault injection — this is what
//!    catches kernel/blocking/SIMD bugs.
//! 2. `NativeInt` is **bit-identical across 1/2/8 worker threads** (integer
//!    accumulation is associative).
//! 3. `NativeInt` vs `SimulatedF32` logits stay inside an envelope scaled to
//!    the precision's quantization step, and batch accuracies agree.

use eden::core::faults::ApproximateMemory;
use eden::core::inference::{self, InferenceBackend};
use eden::dnn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use eden::dnn::{DataKind, DataSite, FaultHook, Layer, Network};
use eden::dram::ErrorModel;
use eden::tensor::init::{seeded_rng, uniform};
use eden::tensor::{Precision, QuantTensor, Tensor};
use eden_par::ThreadPool;
use proptest::prelude::*;

/// Builds a small network with deliberately odd (non-power-of-two, non-even)
/// shapes so kernel tails and padding paths are exercised.
fn odd_net(arch: u8, seed: u64) -> (Network, Vec<usize>) {
    let mut rng = seeded_rng(seed);
    match arch % 3 {
        0 => {
            // Conv stack on a 7×9 image with 3 channels.
            let mut net = Network::new("conv-odd", &[3, 7, 9]);
            net.push(Conv2d::new("c1", 3, 5, 3, 1, 1, &mut rng))
                .push(Relu::new("r1"))
                .push(MaxPool2d::new("p1", 2, 2))
                .push(Conv2d::new("c2", 5, 3, 3, 2, 0, &mut rng))
                .push(Flatten::new("f"))
                .push(Dense::new("fc", 3, 3, &mut rng));
            (net, vec![3, 7, 9])
        }
        1 => {
            // Dense-only MLP with odd widths (also exercises the int4
            // odd-length footprint path).
            let mut net = Network::new("mlp-odd", &[11]);
            net.push(Dense::new("fc1", 11, 7, &mut rng))
                .push(Relu::new("r"))
                .push(Dense::new("fc2", 7, 5, &mut rng))
                .push(Relu::new("r2"))
                .push(Dense::new("fc3", 5, 3, &mut rng));
            (net, vec![11])
        }
        _ => {
            // Strided conv with padding into a dense head.
            let mut net = Network::new("stride-odd", &[2, 9, 7]);
            net.push(Conv2d::new("c", 2, 4, 5, 2, 2, &mut rng))
                .push(Relu::new("r"))
                .push(Flatten::new("f"))
                .push(Dense::new("fc", 4 * 5 * 4, 5, &mut rng));
            (net, vec![2, 9, 7])
        }
    }
}

fn make_memory(net: &Network, precision: Precision, ber: f64, seed: u64) -> ApproximateMemory {
    let mut memory = if ber > 0.0 {
        ApproximateMemory::from_model(ErrorModel::uniform(0.02, 0.5, 7).with_ber(ber), seed)
    } else {
        ApproximateMemory::reliable(seed)
    };
    memory.preallocate(net, precision);
    memory
}

fn logits(
    net: &Network,
    x: &Tensor,
    precision: Precision,
    ber: f64,
    seed: u64,
    backend: InferenceBackend,
) -> Tensor {
    let mut memory = make_memory(net, precision, ber, seed);
    inference::forward_with_faults_backend(net, x, precision, &mut memory, backend)
}

/// A naive scalar reimplementation of the native integer semantics: same
/// load-stream order as the production engine (weight images in visit order,
/// then one IFM load per layer), exact i64 accumulation, identical epilogue
/// expressions — but no im2col, no blocking, no SIMD. The production engine
/// must match it bit for bit.
fn naive_native_logits(
    net: &Network,
    x: &Tensor,
    precision: Precision,
    memory: &mut ApproximateMemory,
) -> Tensor {
    // Weight refetch: corrupt a copy of each clean bit image in visit order.
    let images = net.weight_images(precision);
    let mut corrupted: Vec<QuantTensor> = Vec::new();
    for img in &images {
        let mut q = img.clean.clone();
        memory.corrupt(&img.site, &mut q);
        corrupted.push(q);
    }
    let params_of = |layer_index: usize| -> (&QuantTensor, &QuantTensor) {
        let mut it = images
            .iter()
            .zip(&corrupted)
            .filter(|(img, _)| img.layer_index == layer_index);
        let w = it.next().expect("weight image").1;
        let b = it.next().expect("bias image").1;
        (w, b)
    };

    let mut cur = x.clone();
    for (i, layer) in net.layers().iter().enumerate() {
        let site = DataSite::new(i, layer.name(), DataKind::Ifm);
        let mut q = QuantTensor::quantize(&cur, precision);
        memory.corrupt(&site, &mut q);
        let name = layer.name();
        cur = if name.starts_with('c') {
            // Conv2d layers (named c/c1/c2 in the odd nets).
            let (qw, qb) = params_of(i);
            naive_conv(layer.as_ref(), &q, qw, qb)
        } else if name.starts_with("fc") {
            let (qw, qb) = params_of(i);
            naive_dense(&q, qw, qb)
        } else if name.starts_with('r') {
            // ReLU in the integer domain.
            let scale = q.scale();
            let data: Vec<f32> = (0..q.len())
                .map(|j| {
                    let v = q.q_value(j);
                    if v > 0 {
                        v as f32 * scale
                    } else {
                        0.0
                    }
                })
                .collect();
            Tensor::from_vec(data, q.shape())
        } else if name.starts_with('p') {
            naive_maxpool(&q, 2, 2)
        } else {
            // Flatten.
            let mut data = vec![0.0f32; q.len()];
            q.dequantize_into(&mut data);
            let n = data.len();
            Tensor::from_vec(data, &[n])
        };
    }
    cur
}

fn naive_dense(qx: &QuantTensor, qw: &QuantTensor, qb: &QuantTensor) -> Tensor {
    let k = qx.len();
    let m = qw.len() / k;
    let scale = qw.scale() * qx.scale();
    let bias = qb.dequantize();
    let mut y = vec![0.0f32; m];
    for (o, yo) in y.iter_mut().enumerate() {
        let mut acc: i64 = 0;
        for p in 0..k {
            acc += qw.q_value(o * k + p) as i64 * qx.q_value(p) as i64;
        }
        // Same epilogue expression as the production engine: scale first,
        // bias added after.
        *yo = acc as f32 * scale + bias.data()[o];
    }
    Tensor::from_vec(y, &[m])
}

fn naive_conv(layer: &dyn Layer, qx: &QuantTensor, qw: &QuantTensor, qb: &QuantTensor) -> Tensor {
    let shape = qx.shape().to_vec();
    let (in_c, h, w) = (shape[0], shape[1], shape[2]);
    let out_shape = layer.output_shape(&shape);
    let (out_c, oh, ow) = (out_shape[0], out_shape[1], out_shape[2]);
    let k2 = qw.len() / (out_c * in_c);
    let k = (k2 as f64).sqrt().round() as usize;
    // Recover stride/padding from the geometry: try the small space used by
    // the odd nets.
    let (stride, padding) = (0..3usize)
        .flat_map(|p| (1..4usize).map(move |s| (s, p)))
        .find(|(s, p)| (h + 2 * p - k) / s + 1 == oh && (w + 2 * p - k) / s + 1 == ow)
        .expect("conv geometry");
    let scale = qw.scale() * qx.scale();
    let bias = qb.dequantize();
    let mut y = vec![0.0f32; out_c * oh * ow];
    for oc in 0..out_c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: i64 = 0;
                for ic in 0..in_c {
                    for ky in 0..k {
                        let iy = (oy * stride + ky) as isize - padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let xq = qx.q_value(ic * h * w + iy as usize * w + ix as usize);
                            let wq = qw.q_value(oc * in_c * k * k + ic * k * k + ky * k + kx);
                            acc += wq as i64 * xq as i64;
                        }
                    }
                }
                // Same epilogue expression as the production engine:
                // bias + acc · scale.
                y[oc * oh * ow + oy * ow + ox] = bias.data()[oc] + acc as f32 * scale;
            }
        }
    }
    Tensor::from_vec(y, &[out_c, oh, ow])
}

fn naive_maxpool(qx: &QuantTensor, size: usize, stride: usize) -> Tensor {
    let shape = qx.shape().to_vec();
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let (oh, ow) = ((h - size) / stride + 1, (w - size) / stride + 1);
    let scale = qx.scale();
    let mut out = vec![0.0f32; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = i32::MIN;
                for ky in 0..size {
                    for kx in 0..size {
                        let q =
                            qx.q_value(ch * h * w + (oy * stride + ky) * w + (ox * stride + kx));
                        best = best.max(q);
                    }
                }
                out[ch * oh * ow + oy * ow + ox] = best as f32 * scale;
            }
        }
    }
    Tensor::from_vec(out, &[c, oh, ow])
}

/// Cross-backend logit envelope: one quantization step of the final
/// activation scale, amplified by a small constant for cascade effects, plus
/// f32 rounding slack. Coarser precisions get wider envelopes (their
/// re-quantization steps are larger).
fn envelope(precision: Precision, reference: f32) -> f32 {
    let step = match precision {
        Precision::Int4 => 0.6,
        Precision::Int8 => 0.08,
        _ => 5e-3,
    };
    step * (1.0 + reference.abs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn native_engine_matches_naive_integer_reference_bit_for_bit(
        arch in 0u8..3,
        seed in 0u64..1_000,
        precision_idx in 0usize..3,
        fault_sel in 0u8..2,
    ) {
        let precision = [Precision::Int4, Precision::Int8, Precision::Int16][precision_idx];
        let (net, input_shape) = odd_net(arch, seed);
        let mut rng = seeded_rng(seed ^ 0xA5A5);
        let x = uniform(&input_shape, -1.0, 1.0, &mut rng);
        let ber = if fault_sel == 1 { 1e-3 } else { 0.0 };

        // 1. Production engine ≡ naive scalar reference, bit for bit: the
        // SIMD dot kernels, 2×2 blocking, im2col lowering, scratch reuse and
        // refetch plumbing must not change a single bit.
        let mut reference_memory = make_memory(&net, precision, ber, seed);
        let reference = naive_native_logits(&net, &x, precision, &mut reference_memory);
        let native = logits(&net, &x, precision, ber, seed, InferenceBackend::NativeInt);
        let native_bits: Vec<u32> = native.data().iter().map(|v| v.to_bits()).collect();
        let reference_bits: Vec<u32> = reference.data().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(&native_bits, &reference_bits, "{} engine != naive reference", precision);

        // 2. Bit-identical for any worker count.
        for threads in [1usize, 2, 8] {
            let run = ThreadPool::new(threads).install(|| {
                logits(&net, &x, precision, ber, seed, InferenceBackend::NativeInt)
            });
            let bits: Vec<u32> = run.data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&bits, &native_bits, "native logits differ at {} threads", threads);
        }

        // 3. Cross-backend envelope: the simulated-f32 logits agree up to
        // re-quantization discontinuities of the precision.
        let simulated = logits(&net, &x, precision, ber, seed, InferenceBackend::SimulatedF32);
        prop_assert_eq!(native.shape(), simulated.shape());
        for (n, s) in native.data().iter().zip(simulated.data()) {
            prop_assert!(
                (n - s).abs() <= envelope(precision, *s),
                "{} logit outside envelope: native {} vs simulated {}", precision, n, s
            );
        }
    }

    #[test]
    fn batch_accuracy_parity_on_reliable_memory(seed in 0u64..200, precision_idx in 0usize..3) {
        // Whole-batch evaluation through the real evaluator: on reliable
        // memory the two engines classify a batch nearly identically — any
        // systematic divergence would show up as a large accuracy gap.
        let precision = [Precision::Int4, Precision::Int8, Precision::Int16][precision_idx];
        let (net, input_shape) = odd_net(0, seed);
        let mut rng = seeded_rng(seed ^ 0x77);
        let samples: Vec<(Tensor, usize)> = (0..24)
            .map(|i| (uniform(&input_shape, -1.0, 1.0, &mut rng), i % 3))
            .collect();
        let sim = inference::evaluate_reliable_backend(
            &net,
            &samples,
            precision,
            InferenceBackend::SimulatedF32,
        );
        let native = inference::evaluate_reliable_backend(
            &net,
            &samples,
            precision,
            InferenceBackend::NativeInt,
        );
        // Allow a couple of marginal-sample disagreements out of 24 (logit
        // near-ties can re-quantize either way).
        prop_assert!(
            (sim - native).abs() <= 2.0 / 24.0 + 1e-6,
            "batch accuracy diverged: simulated {} vs native {}", sim, native
        );

        // A reused session must reproduce each backend's one-shot result bit
        // for bit — on the second call it serves from warm pools and the
        // cached baseline, which is exactly the reuse path to pin.
        for (backend, oneshot) in [
            (InferenceBackend::SimulatedF32, sim),
            (InferenceBackend::NativeInt, native),
        ] {
            let mut session = eden::core::session::EvalSession::new(&net, precision, backend);
            let first = session.evaluate_reliable(&samples);
            let second = session.evaluate_reliable(&samples);
            prop_assert_eq!(first.to_bits(), oneshot.to_bits(), "{} session != one-shot", precision);
            prop_assert_eq!(second.to_bits(), oneshot.to_bits(), "{} warm session != one-shot", precision);
        }
    }
}
