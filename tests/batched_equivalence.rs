//! Batched-execution equivalence: overlay-grouped multi-sample batching
//! ([`EvalSession::evaluate_concurrent_batched`]) against the per-sample
//! reference (`batch == 1`), pinned bit for bit.
//!
//! The batched path packs every sample of a group into one weight-stationary
//! GEMM per layer, so the properties here assert the strongest contract the
//! implementation claims: for any backend, integer precision, worker-thread
//! count, refetch mode and batch cap, the accuracy bits AND the memory's
//! injection statistics are exactly those of per-sample execution — including
//! when groups split at sample-varying corruption overlays and when samples
//! resume mid-network from clean-activation checkpoints.

use eden::core::faults::ApproximateMemory;
use eden::core::inference::InferenceBackend;
use eden::core::session::{EvalSession, RefetchMode};
use eden::dnn::train::{TrainConfig, Trainer};
use eden::dnn::{data::SyntheticVision, zoo, Dataset, Network};
use eden::dram::ErrorModel;
use eden::tensor::{Precision, Tensor};
use eden_par::ThreadPool;
use proptest::prelude::*;

fn trained_lenet(seed: u64) -> (Network, SyntheticVision) {
    let dataset = SyntheticVision::tiny(seed);
    let mut net = zoo::lenet(&dataset.spec(), seed);
    Trainer::new(TrainConfig {
        epochs: 3,
        ..TrainConfig::default()
    })
    .train(&mut net, &dataset);
    (net, dataset)
}

/// One evaluation outcome: accuracy bits plus the memory's injection
/// statistics (flip counts, refetch accounting) — both must match exactly.
type Outcome = (u32, eden::core::faults::MemoryStats);

/// Evaluates `samples` through a fresh session at the given batch cap.
#[allow(clippy::too_many_arguments)]
fn eval_at_cap(
    net: &Network,
    samples: &[(Tensor, usize)],
    precision: Precision,
    backend: InferenceBackend,
    mode: RefetchMode,
    template: &ErrorModel,
    ber: f64,
    batch: usize,
    seed: u64,
) -> Outcome {
    let session = EvalSession::new(net, precision, backend).with_refetch_mode(mode);
    let mut memory = ApproximateMemory::from_model(template.with_ber(ber), seed);
    let acc = session.evaluate_concurrent_batched(samples, &mut memory, batch);
    (acc.to_bits(), memory.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The core contract: any batch cap is bit-identical to per-sample
    /// execution across backends × precisions × thread counts × refetch
    /// modes. `batch` covers a non-divisor of the window (3), a whole
    /// refetch slot (16) and the full window (N).
    #[test]
    fn batched_evaluation_is_bit_identical_to_per_sample(
        seed in 0u64..64,
        precision_idx in 0usize..3,
        backend_sel in 0u8..2,
        threads_idx in 0usize..3,
        mode_sel in 0u8..2,
        batch_idx in 0usize..3,
    ) {
        let precision = [Precision::Int4, Precision::Int8, Precision::Int16][precision_idx];
        let backend = if backend_sel == 0 {
            InferenceBackend::SimulatedF32
        } else {
            InferenceBackend::NativeInt
        };
        let threads = [1usize, 2, 8][threads_idx];
        let mode = if mode_sel == 0 {
            RefetchMode::Overlay
        } else {
            RefetchMode::ImageReload
        };
        let (net, dataset) = trained_lenet(seed % 4);
        let samples = &dataset.test()[..24];
        let batch = [3usize, 16, samples.len()][batch_idx];
        let template = ErrorModel::uniform(0.02, 0.5, seed ^ 0xBA7C);

        let pool = ThreadPool::new(threads);
        let reference = pool.install(|| {
            eval_at_cap(&net, samples, precision, backend, mode, &template, 1e-2, 1, seed)
        });
        let batched = pool.install(|| {
            eval_at_cap(&net, samples, precision, backend, mode, &template, 1e-2, batch, seed)
        });
        prop_assert_eq!(
            batched, reference,
            "{} {} {} threads {} batch {}", precision, backend, threads, mode, batch
        );
    }

    /// Mixed overlay-sharing: at a low BER many refetch slots draw zero
    /// flips (equal, mergeable overlays) while others draw distinct ones,
    /// so the grouping logic exercises merged groups, split groups and
    /// singleton fallbacks in one window — still bit-identical, and with
    /// every sample accounted for exactly once in the batch counters.
    #[test]
    fn mixed_overlay_sharing_groups_stay_bit_identical(
        seed in 0u64..64,
        backend_sel in 0u8..2,
        ber_idx in 0usize..3,
    ) {
        let backend = if backend_sel == 0 {
            InferenceBackend::SimulatedF32
        } else {
            InferenceBackend::NativeInt
        };
        let ber = [0.0, 1e-4, 1e-2][ber_idx];
        let (net, dataset) = trained_lenet(seed % 4);
        let samples = &dataset.test()[..24];
        let template = ErrorModel::uniform(0.02, 0.5, seed ^ 0x0E4A);

        let reference = eval_at_cap(
            &net, samples, Precision::Int8, backend,
            RefetchMode::Overlay, &template, ber, 1, seed,
        );
        let session = EvalSession::new(&net, Precision::Int8, backend)
            .with_refetch_mode(RefetchMode::Overlay);
        let mut memory = ApproximateMemory::from_model(template.with_ber(ber), seed);
        let acc = session.evaluate_concurrent_batched(samples, &mut memory, 8);
        let counters = session.batch_counters();
        prop_assert_eq!((acc.to_bits(), memory.stats()), reference);
        prop_assert_eq!(
            counters.batched_samples + counters.fallback_samples,
            samples.len() as u64,
            "every sample is either batched or a fallback"
        );
    }

    /// Checkpoint resume inside a batch: a second probe through the same
    /// session resumes samples from their clean-activation checkpoints at
    /// the first corrupted layer, so groups mix full passes with
    /// mid-network resumes — the probe sequence must stay bit-identical to
    /// a batching-disabled session doing the same resumes.
    #[test]
    fn checkpoint_resume_inside_batch_is_bit_identical(
        seed in 0u64..64,
        backend_sel in 0u8..2,
        threads_idx in 0usize..3,
    ) {
        let backend = if backend_sel == 0 {
            InferenceBackend::SimulatedF32
        } else {
            InferenceBackend::NativeInt
        };
        let threads = [1usize, 2, 8][threads_idx];
        let (net, dataset) = trained_lenet(seed % 4);
        let samples = &dataset.test()[..24];
        let template = ErrorModel::uniform(0.02, 0.5, seed ^ 0xC4EC);
        // Revisit operating points so later probes hit warm checkpoints.
        let bers = [1e-3, 1e-2, 1e-3, 0.0];

        let probe_sequence = |batch: usize| {
            let session = EvalSession::new(&net, Precision::Int8, backend)
                .with_checkpoints(true);
            bers.iter()
                .map(|&ber| {
                    let mut memory =
                        ApproximateMemory::from_model(template.with_ber(ber), seed);
                    let acc = session.evaluate_concurrent_batched(samples, &mut memory, batch);
                    (acc.to_bits(), memory.stats())
                })
                .collect::<Vec<Outcome>>()
        };

        let pool = ThreadPool::new(threads);
        let reference = pool.install(|| probe_sequence(1));
        let batched = pool.install(|| probe_sequence(16));
        prop_assert_eq!(batched, reference, "{} {} threads", backend, threads);
    }
}
