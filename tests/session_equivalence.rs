//! Session equivalence: [`eden::core::session::EvalSession`] reuse against
//! the one-shot per-call API, pinned bit for bit.
//!
//! The one-shot functions construct a throwaway session per call, so the
//! interesting property is that *reuse* — the same session serving a whole
//! probe sequence, with its cached weight images, corrupted-weight pools,
//! reliable baselines and shared weak-cell maps — never changes a single
//! bit of any accuracy, sweep point or injection statistic, across both
//! execution backends, every precision, and 1/2/8 worker threads.

use eden::core::faults::ApproximateMemory;
use eden::core::inference::{self, InferenceBackend};
use eden::core::session::EvalSession;
use eden::dnn::train::{TrainConfig, Trainer};
use eden::dnn::{data::SyntheticVision, zoo, Dataset, Network};
use eden::dram::ErrorModel;
use eden::tensor::{Precision, Tensor};
use eden_par::ThreadPool;
use proptest::prelude::*;

fn trained_lenet(seed: u64) -> (Network, SyntheticVision) {
    let dataset = SyntheticVision::tiny(seed);
    let mut net = zoo::lenet(&dataset.spec(), seed);
    Trainer::new(TrainConfig {
        epochs: 3,
        ..TrainConfig::default()
    })
    .train(&mut net, &dataset);
    (net, dataset)
}

/// One probe outcome: accuracy bits plus the memory's injection statistics.
type Probe = (u32, eden::core::faults::MemoryStats);

/// Runs the probe sequence through one reused session.
fn probes_via_session(
    net: &Network,
    samples: &[(Tensor, usize)],
    precision: Precision,
    backend: InferenceBackend,
    template: &ErrorModel,
    bers: &[f64],
    seed: u64,
) -> (Vec<Probe>, u32, Vec<(u64, u32)>) {
    let mut session = EvalSession::new(net, precision, backend);
    let probes = bers
        .iter()
        .map(|&ber| {
            let mut memory = ApproximateMemory::from_model(template.with_ber(ber), seed);
            let acc = session.evaluate_with_faults(samples, &mut memory);
            (acc.to_bits(), memory.stats())
        })
        .collect();
    let reliable = session.evaluate_reliable(samples).to_bits();
    let sweep = session
        .accuracy_vs_ber(samples, template, bers, None, seed)
        .into_iter()
        .map(|(b, a)| (b.to_bits(), a.to_bits()))
        .collect();
    (probes, reliable, sweep)
}

/// Runs the same probe sequence through fresh one-shot calls.
fn probes_via_oneshot(
    net: &Network,
    samples: &[(Tensor, usize)],
    precision: Precision,
    backend: InferenceBackend,
    template: &ErrorModel,
    bers: &[f64],
    seed: u64,
) -> (Vec<Probe>, u32, Vec<(u64, u32)>) {
    let probes = bers
        .iter()
        .map(|&ber| {
            let mut memory = ApproximateMemory::from_model(template.with_ber(ber), seed);
            let acc = inference::evaluate_with_faults_backend(
                net,
                samples,
                precision,
                &mut memory,
                backend,
            );
            (acc.to_bits(), memory.stats())
        })
        .collect();
    let reliable = inference::evaluate_reliable_backend(net, samples, precision, backend).to_bits();
    let sweep = inference::accuracy_vs_ber_backend(
        net, samples, precision, template, bers, None, seed, backend,
    )
    .into_iter()
    .map(|(b, a)| (b.to_bits(), a.to_bits()))
    .collect();
    (probes, reliable, sweep)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn session_reuse_is_bit_identical_to_one_shot_calls(
        seed in 0u64..100,
        precision_idx in 0usize..4,
        backend_sel in 0u8..2,
        threads_idx in 0usize..3,
    ) {
        let precision =
            [Precision::Int4, Precision::Int8, Precision::Int16, Precision::Fp32][precision_idx];
        let backend = if backend_sel == 0 {
            InferenceBackend::SimulatedF32
        } else {
            InferenceBackend::NativeInt
        };
        let threads = [1usize, 2, 8][threads_idx];
        let (net, dataset) = trained_lenet(seed % 4);
        let samples = &dataset.test()[..20];
        let template = ErrorModel::uniform(0.02, 0.5, seed ^ 0x5E55);
        // A probe schedule that revisits operating points, like the
        // characterization loops do.
        let bers = [1e-3, 1e-2, 1e-3, 5e-2];

        let pool = ThreadPool::new(threads);
        let via_session = pool.install(|| {
            probes_via_session(&net, samples, precision, backend, &template, &bers, seed)
        });
        let via_oneshot = pool.install(|| {
            probes_via_oneshot(&net, samples, precision, backend, &template, &bers, seed)
        });
        prop_assert_eq!(via_session, via_oneshot, "{} {} {} threads", precision, backend, threads);
    }
}

#[test]
fn forward_with_faults_matches_one_shot_forward() {
    let (net, dataset) = trained_lenet(0);
    let template = ErrorModel::uniform(0.02, 0.5, 9);
    for backend in [InferenceBackend::SimulatedF32, InferenceBackend::NativeInt] {
        for precision in [Precision::Int4, Precision::Int8, Precision::Fp32] {
            let mut session = EvalSession::new(&net, precision, backend);
            for (i, (x, _)) in dataset.test()[..4].iter().enumerate() {
                let mut a = ApproximateMemory::from_model(template.with_ber(1e-3), i as u64);
                let mut b = a.clone();
                let via_session = session.forward_with_faults(x, &mut a);
                let via_oneshot =
                    inference::forward_with_faults_backend(&net, x, precision, &mut b, backend);
                // Compare bit patterns: FP32 corruption without bounding can
                // produce NaN logits, and NaN != NaN under float equality.
                let session_bits: Vec<u32> =
                    via_session.data().iter().map(|v| v.to_bits()).collect();
                let oneshot_bits: Vec<u32> =
                    via_oneshot.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(via_session.shape(), via_oneshot.shape());
                assert_eq!(
                    session_bits, oneshot_bits,
                    "{precision} {backend} sample {i}"
                );
                assert_eq!(a.stats(), b.stats(), "{precision} {backend} sample {i}");
            }
        }
    }
}

#[test]
fn shared_weak_map_cache_does_not_change_results() {
    // The same memory evaluated with and without an attached shared cache
    // must corrupt identically — maps are pure functions of their key.
    let (net, dataset) = trained_lenet(1);
    let samples = &dataset.test()[..16];
    let template = ErrorModel::bitline(0.02, 0.5, 0.8, 3);
    let mut with_cache = ApproximateMemory::from_model(template.with_ber(5e-3), 7);
    let session = EvalSession::new(&net, Precision::Int8, InferenceBackend::SimulatedF32);
    with_cache.attach_weak_map_cache(session.weak_map_cache());
    let mut without_cache = ApproximateMemory::from_model(template.with_ber(5e-3), 7);
    let a = inference::evaluate_with_faults(&net, samples, Precision::Int8, &mut with_cache);
    let b = inference::evaluate_with_faults(&net, samples, Precision::Int8, &mut without_cache);
    assert_eq!(a.to_bits(), b.to_bits());
    assert_eq!(with_cache.stats(), without_cache.stats());
    assert!(with_cache.stats().bit_flips > 0);
}
