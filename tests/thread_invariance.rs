//! Thread-count invariance: every parallel code path derives its randomness
//! from per-work-item streams, so running on 1, 2 or 8 worker threads — in
//! whatever interleaving those pools produce — must yield bit-identical
//! results for a fixed seed. This is the contract that lets CI validate
//! numerics on any runner while production saturates every core.

use eden::core::characterize::CoarseConfig;
use eden::core::curricular::CurricularConfig;
use eden::core::faults::ApproximateMemory;
use eden::core::inference;
use eden::core::{EdenConfig, EdenPipeline};
use eden::dnn::train::{TrainConfig, Trainer};
use eden::dnn::{data::SyntheticVision, zoo, Dataset, Network};
use eden::dram::characterize::CharacterizeConfig;
use eden::dram::error_model::Layout;
use eden::dram::inject::Injector;
use eden::dram::{ApproxDramDevice, ErrorModel, Vendor};
use eden::tensor::{Precision, QuantTensor, Tensor};
use eden_par::ThreadPool;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn trained_lenet(seed: u64) -> (Network, SyntheticVision) {
    let dataset = SyntheticVision::tiny(seed);
    let mut net = zoo::lenet(&dataset.spec(), seed);
    Trainer::new(TrainConfig {
        epochs: 3,
        ..TrainConfig::default()
    })
    .train(&mut net, &dataset);
    (net, dataset)
}

/// Runs `f` once per thread count and asserts all results are identical.
fn assert_invariant<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) {
    let results: Vec<(usize, R)> = THREAD_COUNTS
        .iter()
        .map(|&threads| (threads, ThreadPool::new(threads).install(&f)))
        .collect();
    for (threads, result) in &results[1..] {
        assert_eq!(
            &results[0].1, result,
            "result differs between {} and {threads} threads",
            results[0].0
        );
    }
}

#[test]
fn injector_corrupt_placed_is_thread_count_invariant() {
    let values = Tensor::from_vec(
        (0..20_000).map(|i| (i as f32 * 0.11).sin()).collect(),
        &[20_000],
    );
    let clean = QuantTensor::quantize(&values, Precision::Int8);
    let layout = Layout::new(2048, 7);

    let model = Injector::from_model(ErrorModel::bitline(0.02, 0.5, 0.8, 5), Layout::default());
    assert_invariant(|| {
        let mut t = clean.clone();
        let flips = model.corrupt_placed_seeded(&mut t, &layout, 42);
        (t, flips)
    });

    let device = Injector::from_device(
        ApproxDramDevice::new(Vendor::C, 11),
        eden::dram::geometry::partitions(
            &eden::dram::geometry::DramGeometry::ddr4_module(),
            eden::dram::geometry::PartitionGranularity::Bank,
        )[0],
        eden::dram::OperatingPoint::with_vdd_reduction(0.25),
    );
    assert_invariant(|| {
        let mut t = clean.clone();
        let flips = device.corrupt_placed_seeded(&mut t, &layout, 43);
        (t, flips)
    });
}

#[test]
fn batch_evaluation_is_thread_count_invariant() {
    let (net, dataset) = trained_lenet(31);
    let samples = &dataset.test()[..40];
    assert_invariant(|| {
        let mut memory = ApproximateMemory::from_model(ErrorModel::uniform(0.02, 0.5, 3), 17);
        let acc = inference::evaluate_with_faults(&net, samples, Precision::Int8, &mut memory);
        // Accuracy bits AND the injection statistics must match exactly.
        (acc.to_bits(), memory.stats())
    });
}

#[test]
fn native_backend_evaluation_is_thread_count_invariant() {
    // The native integer engine accumulates exactly, so its batch accuracy
    // AND injection statistics must be bit-identical for any worker count —
    // same contract as the simulated path, pinned per precision.
    let (net, dataset) = trained_lenet(35);
    let samples = &dataset.test()[..40];
    for precision in [Precision::Int4, Precision::Int8, Precision::Int16] {
        assert_invariant(|| {
            let mut memory = ApproximateMemory::from_model(ErrorModel::uniform(0.02, 0.5, 3), 19);
            let acc = inference::evaluate_with_faults_backend(
                &net,
                samples,
                precision,
                &mut memory,
                inference::InferenceBackend::NativeInt,
            );
            (acc.to_bits(), memory.stats())
        });
    }
}

#[test]
fn session_probe_sequence_is_thread_count_invariant() {
    // A reused EvalSession — warm pools, cached baseline, shared weak-map
    // cache — must stay bit-identical across worker counts for a whole
    // probe sequence, exactly like the one-shot API it wraps.
    use eden::core::session::EvalSession;
    let (net, dataset) = trained_lenet(36);
    let samples = &dataset.test()[..32];
    let template = ErrorModel::uniform(0.02, 0.5, 6);
    for backend in [
        inference::InferenceBackend::SimulatedF32,
        inference::InferenceBackend::NativeInt,
    ] {
        assert_invariant(|| {
            let mut session = EvalSession::new(&net, Precision::Int8, backend);
            let mut outcomes = Vec::new();
            for ber in [1e-3, 1e-2, 1e-3] {
                let mut memory = ApproximateMemory::from_model(template.with_ber(ber), 21);
                let acc = session.evaluate_with_faults(samples, &mut memory);
                outcomes.push((acc.to_bits(), memory.stats()));
            }
            let reliable = session.evaluate_reliable(samples).to_bits();
            let sweep: Vec<(u64, u32)> = session
                .accuracy_vs_ber(samples, &template, &[1e-4, 1e-2], None, 23)
                .into_iter()
                .map(|(b, a)| (b.to_bits(), a.to_bits()))
                .collect();
            (outcomes, reliable, sweep)
        });
    }
}

#[test]
fn fine_characterization_is_thread_count_invariant() {
    // Fine characterization fans each round's site probes out across the
    // worker pool (Jacobi rounds). Every probe owns a `probe_seed(seed,
    // round, site)` stream and acceptances fold in site order after the
    // fan-out, so the full tolerance table — and the baseline/floor pair —
    // must be bit-identical at any worker count.
    use eden::core::characterize::{fine_characterize, FineConfig};
    let (net, dataset) = trained_lenet(37);
    let template = ErrorModel::uniform(0.02, 0.5, 5);
    let cfg = FineConfig {
        eval_samples: 24,
        max_rounds: 2,
        bootstrap_ber: 5e-4,
        ..FineConfig::default()
    };
    assert_invariant(|| {
        let fine = fine_characterize(&net, &dataset, Precision::Int8, &template, None, &cfg);
        let tolerances: Vec<(String, u64)> = fine
            .tolerances
            .iter()
            .map(|(info, ber)| (format!("{:?}", info.site), ber.to_bits()))
            .collect();
        (
            fine.baseline_accuracy.to_bits(),
            fine.accuracy_floor.to_bits(),
            tolerances,
        )
    });
}

#[test]
fn ber_sweep_is_thread_count_invariant() {
    let (net, dataset) = trained_lenet(32);
    let samples = &dataset.test()[..24];
    let template = ErrorModel::uniform(0.02, 0.5, 4);
    assert_invariant(|| {
        let curve = inference::accuracy_vs_ber(
            &net,
            samples,
            Precision::Int8,
            &template,
            &[1e-4, 1e-3, 1e-2, 5e-2],
            None,
            23,
        );
        curve
            .into_iter()
            .map(|(ber, acc)| (ber.to_bits(), acc.to_bits()))
            .collect::<Vec<_>>()
    });
}

#[test]
fn eden_pipeline_is_thread_count_invariant() {
    let (net, dataset) = trained_lenet(33);
    let device = ApproxDramDevice::new(Vendor::A, 9);
    let config = EdenConfig {
        retraining: CurricularConfig {
            epochs: 2,
            step_epochs: 1,
            ..CurricularConfig::default()
        },
        characterization: CoarseConfig {
            eval_samples: 24,
            iterations: 4,
            ..CoarseConfig::default()
        },
        dram_characterization: CharacterizeConfig {
            rows_per_pattern: 1,
            bitlines_per_row: 256,
            reads_per_row: 2,
            seed: 7,
        },
        iterations: 1,
        accuracy_drop: 0.03,
        seed: 7,
        ..EdenConfig::default()
    };

    let reference: Vec<_> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            ThreadPool::new(threads).install(|| {
                let mut boosted = net.clone();
                let outcome = EdenPipeline::new(config).run(&mut boosted, &dataset, &device);
                let logits: Vec<Tensor> = dataset
                    .test()
                    .iter()
                    .map(|(x, _)| boosted.forward(x))
                    .collect();
                (outcome, logits)
            })
        })
        .collect();
    assert_eq!(reference[0].0, reference[1].0, "outcome: 1 vs 2 threads");
    assert_eq!(reference[0].0, reference[2].0, "outcome: 1 vs 8 threads");
    assert_eq!(
        reference[0].1, reference[1].1,
        "boosted net: 1 vs 2 threads"
    );
    assert_eq!(
        reference[0].1, reference[2].1,
        "boosted net: 1 vs 8 threads"
    );
}
