//! Multi-module placement equivalence: a [`PlacementPlan`] lowered onto an
//! [`ApproximateMemory`] corrupts every sample through *composed* per-span
//! overlays (one per `(module, partition)` from its own seed stream, merged
//! in O(flips)), and that production composition must be bit-identical —
//! accuracy bits and injection statistics — to the reference that applies
//! each partition's corruption independently
//! ([`SpanComposition::Independent`]), across execution backends, precisions
//! and 1/2/8 worker threads. The cross-module search itself must also be a
//! pure function of its inputs.

use eden::core::characterize::FineCharacterization;
use eden::core::faults::{ApproximateMemory, MemoryStats, SpanComposition};
use eden::core::inference::InferenceBackend;
use eden::core::mapping::{
    benefit_traffic_score, multi_module_map, MultiModuleConfig, PlacementPlan,
};
use eden::core::session::EvalSession;
use eden::dnn::train::{TrainConfig, Trainer};
use eden::dnn::{data::SyntheticVision, zoo, Dataset, Network};
use eden::dram::characterize::CharacterizeConfig;
use eden::dram::device::ApproxDramDevice;
use eden::dram::geometry::{DramGeometry, Partition};
use eden::dram::system::{DramModule, MemorySystem};
use eden::dram::{OperatingPoint, Vendor};
use eden::tensor::Precision;
use eden_par::ThreadPool;

fn trained_lenet(seed: u64) -> (Network, SyntheticVision) {
    let dataset = SyntheticVision::tiny(seed);
    let mut net = zoo::lenet(&dataset.spec(), seed);
    Trainer::new(TrainConfig {
        epochs: 3,
        ..TrainConfig::default()
    })
    .train(&mut net, &dataset);
    (net, dataset)
}

/// Synthetic per-site tolerances (cycling through three realistic magnitudes)
/// so the plan uses reduced operating points without paying for a real
/// fine-characterization run.
fn characterization_for(net: &Network) -> FineCharacterization {
    let tolerances = net
        .data_sites()
        .into_iter()
        .enumerate()
        .map(|(i, info)| (info, [5e-2, 5e-3, 2e-2][i % 3]))
        .collect();
    FineCharacterization {
        baseline_accuracy: 0.9,
        accuracy_floor: 0.85,
        tolerances,
    }
}

/// A two-module system (vendor A offering voltage reductions, vendor B
/// `tRCD` reductions) over small-rowed custom geometry, with partition
/// capacities sized so the largest site *cannot* fit in one partition — the
/// plan must split it, which is what makes per-load overlay composition
/// non-trivial.
fn system_for(net: &Network, precision: Precision) -> MemorySystem {
    let geometry = DramGeometry {
        banks: 2,
        subarrays_per_bank: 2,
        rows_per_subarray: 512,
        row_bytes: 64,
    };
    let row_bytes = geometry.row_bytes as u64;
    let rows: Vec<u64> = net
        .data_sites()
        .iter()
        .map(|d| d.bytes(precision).div_ceil(row_bytes))
        .collect();
    let max_rows = rows.iter().copied().max().unwrap();
    // One row of per-piece rounding slack per site, then a third of the
    // total per partition (4 partitions leave ample headroom) — but strictly
    // less than the largest site, forcing a capacity spill.
    let total_rows: u64 = rows.iter().sum::<u64>() + rows.len() as u64;
    let cap_rows = (total_rows.div_ceil(3)).max(2).min(max_rows - 1);
    let parts: Vec<Partition> = (0..2)
        .map(|i| Partition {
            index: i,
            bank: i,
            first_subarray: 0,
            subarrays: 1,
            capacity_bytes: cap_rows * row_bytes,
        })
        .collect();
    let cfg = CharacterizeConfig {
        rows_per_pattern: 1,
        bitlines_per_row: 64,
        reads_per_row: 1,
        seed: 9,
    };
    let ops_a = vec![
        OperatingPoint::nominal(),
        OperatingPoint::with_vdd_reduction(0.15),
        OperatingPoint::with_vdd_reduction(0.30),
    ];
    let ops_b = vec![
        OperatingPoint::nominal(),
        OperatingPoint::with_trcd_reduction(3.0),
        OperatingPoint::with_trcd_reduction(5.5),
    ];
    MemorySystem::new(vec![
        DramModule::characterize(
            ApproxDramDevice::with_geometry(Vendor::A, geometry, 41),
            &parts,
            &ops_a,
            &cfg,
        ),
        DramModule::characterize(
            ApproxDramDevice::with_geometry(Vendor::B, geometry, 42),
            &parts,
            &ops_b,
            &cfg,
        ),
    ])
}

fn plan_for(net: &Network, system: &MemorySystem, precision: Precision) -> PlacementPlan {
    multi_module_map(
        &characterization_for(net),
        system,
        precision,
        &MultiModuleConfig::default(),
        &benefit_traffic_score,
    )
}

#[test]
fn composed_overlays_match_independent_partition_evaluation() {
    let (net, dataset) = trained_lenet(3);
    let samples = &dataset.test()[..16];
    for precision in [Precision::Int4, Precision::Int8, Precision::Fp32] {
        let system = system_for(&net, precision);
        let plan = plan_for(&net, &system, precision);
        // The plan genuinely spans modules and splits at least one site —
        // otherwise composition would be trivially single-overlay.
        let modules_used: std::collections::HashSet<usize> = plan
            .placements
            .iter()
            .flat_map(|p| p.spans.iter().map(|s| s.module))
            .collect();
        assert!(modules_used.len() >= 2, "{precision}: plan uses one module");
        assert!(
            plan.placements.iter().any(|p| p.spans.len() >= 2),
            "{precision}: no site was split across partitions"
        );
        assert!(plan.unmapped.is_empty(), "{precision}: {:?}", plan.unmapped);

        for backend in [InferenceBackend::SimulatedF32, InferenceBackend::NativeInt] {
            let run = |composition: SpanComposition, threads: usize| -> (u32, MemoryStats) {
                let pool = ThreadPool::new(threads);
                pool.install(|| {
                    let mut session = EvalSession::new(&net, precision, backend);
                    let mut memory =
                        ApproximateMemory::reliable(31).with_span_composition(composition);
                    plan.apply_to(&mut memory, &system);
                    let acc = session.evaluate_with_faults(samples, &mut memory);
                    (acc.to_bits(), memory.stats())
                })
            };
            let reference = run(SpanComposition::Independent, 1);
            assert!(reference.1.bit_flips > 0, "{precision} {backend}: no flips");
            for threads in [1usize, 2, 8] {
                let merged = run(SpanComposition::Merged, threads);
                assert_eq!(
                    merged, reference,
                    "{precision} {backend} {threads} threads: composed overlay diverged"
                );
                let independent = run(SpanComposition::Independent, threads);
                assert_eq!(
                    independent, reference,
                    "{precision} {backend} {threads} threads: reference not thread-invariant"
                );
            }
        }
    }
}

#[test]
fn cross_module_search_is_deterministic_end_to_end() {
    let (net, _) = trained_lenet(4);
    let system = system_for(&net, Precision::Int8);
    let a = plan_for(&net, &system, Precision::Int8);
    let b = plan_for(&net, &system, Precision::Int8);
    assert_eq!(a, b, "same inputs must produce the same plan");
    // And the plan is stable under different thread counts of the scoring
    // pool.
    let c = ThreadPool::new(8).install(|| plan_for(&net, &system, Precision::Int8));
    assert_eq!(a, c, "plan must not depend on the worker-pool size");
}
