//! Overlay equivalence: the sparse corruption-overlay refetch path
//! ([`eden::core::session::RefetchMode::Overlay`], the production default)
//! pinned bit for bit against the full image-reload reference
//! ([`RefetchMode::ImageReload`]), plus the `apply ∘ revert = identity`
//! property the patch-and-restore pools rely on.
//!
//! The overlay path reuses persistent corrupted copies across probes —
//! reverting the previous draw's deltas and applying the next — so the
//! interesting property is that a whole probe *sequence* (with bounding
//! corrections folded sparsely into the overlays) never differs from the
//! reference in a single accuracy bit or injection statistic, across both
//! execution backends, every precision, and 1/2/8 worker threads.

use eden::core::bounding::{BoundingLogic, CorrectionPolicy};
use eden::core::faults::{ApproximateMemory, MemoryStats};
use eden::core::inference::InferenceBackend;
use eden::core::session::{EvalSession, RefetchMode};
use eden::dnn::train::{TrainConfig, Trainer};
use eden::dnn::{data::SyntheticVision, zoo, DataKind, DataSite, Dataset, Network};
use eden::dram::device::ApproxDramDevice;
use eden::dram::geometry::{partitions, DramGeometry, PartitionGranularity};
use eden::dram::inject::Injector;
use eden::dram::{ErrorModel, Layout, OperatingPoint, Vendor};
use eden::tensor::{CorruptionOverlay, Precision, QuantTensor, Tensor};
use eden_par::ThreadPool;
use proptest::prelude::*;

fn trained_lenet(seed: u64) -> (Network, SyntheticVision) {
    let dataset = SyntheticVision::tiny(seed);
    let mut net = zoo::lenet(&dataset.spec(), seed);
    Trainer::new(TrainConfig {
        epochs: 3,
        ..TrainConfig::default()
    })
    .train(&mut net, &dataset);
    (net, dataset)
}

/// The deepest IFM site of the network — dirtying it leaves the longest
/// clean prefix, so checkpoint resume has the most to skip.
fn deepest_ifm(net: &Network) -> DataSite {
    net.data_sites()
        .into_iter()
        .filter(|info| info.site.kind == DataKind::Ifm)
        .max_by_key(|info| info.site.layer_index)
        .expect("network has IFM sites")
        .site
}

/// Runs a probe sequence that revisits operating points (so the persistent
/// pools go through revert → re-apply cycles) through one session in the
/// given refetch mode, returning accuracy bits and statistics per probe.
#[allow(clippy::too_many_arguments)]
fn probe_sequence(
    net: &Network,
    samples: &[(Tensor, usize)],
    precision: Precision,
    backend: InferenceBackend,
    mode: RefetchMode,
    template: &ErrorModel,
    bounding: Option<BoundingLogic>,
    seed: u64,
) -> Vec<(u32, MemoryStats)> {
    let mut session = EvalSession::new(net, precision, backend).with_refetch_mode(mode);
    [1e-3, 1e-2, 1e-3, 5e-2]
        .iter()
        .map(|&ber| {
            let mut memory = ApproximateMemory::from_model(template.with_ber(ber), seed);
            if let Some(b) = bounding {
                memory = memory.with_bounding(b);
            }
            let acc = session.evaluate_with_faults(samples, &mut memory);
            (acc.to_bits(), memory.stats())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn overlay_refetch_is_bit_identical_to_image_reload(
        seed in 0u64..100,
        precision_idx in 0usize..4,
        backend_sel in 0u8..2,
        threads_idx in 0usize..3,
        bounding_sel in 0u8..2,
    ) {
        let precision =
            [Precision::Int4, Precision::Int8, Precision::Int16, Precision::Fp32][precision_idx];
        let backend = if backend_sel == 0 {
            InferenceBackend::SimulatedF32
        } else {
            InferenceBackend::NativeInt
        };
        let threads = [1usize, 2, 8][threads_idx];
        let (net, dataset) = trained_lenet(seed % 4);
        let samples = &dataset.test()[..20];
        let template = ErrorModel::uniform(0.02, 0.5, seed ^ 0x0E71);
        // Bounding exercises the sparse correction fold of the overlay path.
        let with_bounding = bounding_sel == 1;
        let bounding =
            with_bounding.then(|| BoundingLogic::new(-6.0, 6.0, CorrectionPolicy::Zero));

        let pool = ThreadPool::new(threads);
        let via_overlay = pool.install(|| {
            probe_sequence(
                &net, samples, precision, backend, RefetchMode::Overlay,
                &template, bounding, seed,
            )
        });
        let via_reload = pool.install(|| {
            probe_sequence(
                &net, samples, precision, backend, RefetchMode::ImageReload,
                &template, bounding, seed,
            )
        });
        prop_assert_eq!(
            via_overlay, via_reload,
            "{} {} {} threads bounding={}", precision, backend, threads, with_bounding
        );
    }

    #[test]
    fn checkpointed_resume_is_bit_identical_to_the_full_forward(
        seed in 0u64..100,
        precision_idx in 0usize..4,
        backend_sel in 0u8..2,
        threads_idx in 0usize..3,
        mode_sel in 0u8..2,
        cold_sel in 0u8..2,
    ) {
        let precision =
            [Precision::Int4, Precision::Int8, Precision::Int16, Precision::Fp32][precision_idx];
        let backend = if backend_sel == 0 {
            InferenceBackend::SimulatedF32
        } else {
            InferenceBackend::NativeInt
        };
        let threads = [1usize, 2, 8][threads_idx];
        let mode = if mode_sel == 0 { RefetchMode::Overlay } else { RefetchMode::ImageReload };
        // A 64-byte budget forces every harvest to evict: the store stays
        // effectively empty and each probe runs the cold (full-forward) path
        // through the checkpointing code — still bit-identical.
        let cold = cold_sel == 1;
        let (net, dataset) = trained_lenet(seed % 4);
        let samples = &dataset.test()[..20];
        let template = ErrorModel::uniform(0.02, 0.5, seed ^ 0x51CE);
        // The deepest IFM site leaves the longest clean prefix to resume
        // over, and IFM corruption exercises the per-lane forked streams
        // (activations reload per sample, unlike weights).
        let site = deepest_ifm(&net);

        let pool = ThreadPool::new(threads);
        let run = |checkpoints: bool| {
            let mut session = EvalSession::new(&net, precision, backend)
                .with_refetch_mode(mode)
                .with_checkpoints(checkpoints);
            if checkpoints && cold {
                session = session.with_checkpoint_budget(64);
            }
            let out: Vec<(u32, MemoryStats)> = pool.install(|| {
                [1e-3, 1e-2, 1e-3, 5e-2]
                    .iter()
                    .map(|&ber| {
                        let mut memory = ApproximateMemory::reliable(seed);
                        memory.assign_site(
                            site.clone(),
                            Injector::from_model(template.with_ber(ber), Layout::default()),
                        );
                        let acc = session.evaluate_with_faults(samples, &mut memory);
                        (acc.to_bits(), memory.stats())
                    })
                    .collect()
            });
            let counters = session.checkpoint_counters();
            (out, counters)
        };
        let (resumed, counters) = run(true);
        let (full, _) = run(false);
        prop_assert_eq!(
            resumed, full,
            "{} {} {} threads {:?} cold={}", precision, backend, threads, mode, cold
        );
        if cold {
            prop_assert!(counters.evictions > 0, "tiny budget must evict");
        } else {
            prop_assert!(counters.hits > 0, "later probes must resume from checkpoints");
        }
        prop_assert!(counters.misses > 0, "the first probe is always cold");
    }

    #[test]
    fn apply_revert_is_the_identity_on_random_overlays(
        seed in 0u64..1000,
        precision_idx in 0usize..4,
        len in 1usize..600,
    ) {
        let precision =
            [Precision::Int4, Precision::Int8, Precision::Int16, Precision::Fp32][precision_idx];
        let clean = QuantTensor::quantize(
            &Tensor::from_vec(
                (0..len).map(|i| ((i as u64 + seed) as f32 * 0.137).sin()).collect(),
                &[len],
            ),
            precision,
        );
        // A pseudo-random sparse overlay within the tensor's geometry.
        let mask_limit = if precision.bits() == 32 {
            u32::MAX
        } else {
            (1u32 << precision.bits()) - 1
        };
        let mut deltas = Vec::new();
        let mut w = (seed % 5) as u32;
        while (w as usize) < len {
            let mask = (eden::dram::util::seed_mix(seed, &[w as u64]) as u32) & mask_limit;
            if mask != 0 {
                deltas.push((w, mask));
            }
            w += 1 + (w % 11);
        }
        let flips = deltas.iter().map(|&(_, m)| m.count_ones() as u64).sum();
        let overlay =
            CorruptionOverlay::new(len, precision.bits(), deltas, flips, 0);
        let mut t = clean.clone();
        overlay.apply(&mut t);
        if !overlay.is_empty() {
            // A non-empty overlay must change the image.
            prop_assert_ne!(&t, &clean);
        }
        overlay.revert(&mut t);
        // apply∘revert must restore the image exactly.
        prop_assert_eq!(&t, &clean);
    }
}

#[test]
fn overlay_refetch_matches_reload_under_a_device_backed_memory() {
    // Device-backed injectors have no precomputable weak map: their overlays
    // are derived by corrupt-and-diff. The evaluation results must still be
    // bit-identical to the image-reload reference.
    let (net, dataset) = trained_lenet(1);
    let samples = &dataset.test()[..16];
    let device = ApproxDramDevice::new(Vendor::B, 9);
    let partition = partitions(&DramGeometry::ddr4_module(), PartitionGranularity::Bank)[0];
    let injector =
        Injector::from_device(device, partition, OperatingPoint::with_vdd_reduction(0.3));
    for backend in [InferenceBackend::SimulatedF32, InferenceBackend::NativeInt] {
        let mut overlay_session = EvalSession::new(&net, Precision::Int8, backend);
        let mut reload_session = EvalSession::new(&net, Precision::Int8, backend)
            .with_refetch_mode(RefetchMode::ImageReload);
        let mut a = ApproximateMemory::from_injector(injector.clone(), 5);
        let mut b = ApproximateMemory::from_injector(injector.clone(), 5);
        let via_overlay = overlay_session.evaluate_with_faults(samples, &mut a);
        let via_reload = reload_session.evaluate_with_faults(samples, &mut b);
        assert_eq!(via_overlay.to_bits(), via_reload.to_bits(), "{backend}");
        assert_eq!(a.stats(), b.stats(), "{backend}");
        assert!(a.stats().bit_flips > 0);
    }
}

#[test]
fn characterizations_are_identical_under_both_refetch_modes() {
    // The fine-grained probe loop — the workload the overlay path exists
    // for — must produce the exact same tolerances either way.
    use eden::core::characterize::{fine_characterize_session, FineConfig};
    let (net, dataset) = trained_lenet(2);
    let template = ErrorModel::uniform(0.01, 0.5, 3);
    let bounding =
        BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
    let cfg = FineConfig {
        eval_samples: 16,
        max_rounds: 2,
        bootstrap_ber: 5e-4,
        ..FineConfig::default()
    };
    let run = |mode: RefetchMode| {
        let mut session = EvalSession::new(&net, Precision::Int8, InferenceBackend::default())
            .with_refetch_mode(mode);
        fine_characterize_session(&mut session, &dataset, &template, Some(bounding), &cfg)
    };
    assert_eq!(run(RefetchMode::Overlay), run(RefetchMode::ImageReload));
}
