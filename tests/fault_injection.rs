//! Integration tests for the fault-injection path: `ApproximateMemory` +
//! `inference::evaluate_with_faults` across bit error rates.

use eden::core::faults::ApproximateMemory;
use eden::core::inference;
use eden::dnn::train::{TrainConfig, Trainer};
use eden::dnn::{data::SyntheticVision, zoo, Dataset, Network};
use eden::dram::ErrorModel;
use eden::tensor::Precision;

fn trained_lenet(seed: u64) -> (Network, SyntheticVision) {
    let dataset = SyntheticVision::tiny(seed);
    let mut net = zoo::lenet(&dataset.spec(), seed);
    Trainer::new(TrainConfig {
        epochs: 4,
        ..TrainConfig::default()
    })
    .train(&mut net, &dataset);
    (net, dataset)
}

#[test]
fn accuracy_is_a_probability_at_every_bit_error_rate() {
    let (net, dataset) = trained_lenet(11);
    let samples = &dataset.test()[..24];
    let template = ErrorModel::uniform(0.01, 0.5, 7);

    for precision in [Precision::Int8, Precision::Fp32] {
        for ber in [0.0, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.4] {
            let mut memory = ApproximateMemory::from_model(template.with_ber(ber), 3);
            let accuracy = inference::evaluate_with_faults(&net, samples, precision, &mut memory);
            assert!(
                (0.0..=1.0).contains(&accuracy),
                "accuracy {accuracy} out of range at BER {ber} ({precision:?})"
            );
            if ber == 0.0 {
                assert_eq!(memory.stats().bit_flips, 0, "BER=0 must never flip a bit");
            } else if ber >= 1e-3 {
                // At tiny BERs the deterministic weak-cell map may contain no
                // weak cell in the addressed rows, so only assert flips where
                // they are statistically certain.
                assert!(
                    memory.stats().bit_flips > 0,
                    "BER {ber} injected no flips over {} loads",
                    memory.stats().loads
                );
            }
        }
    }
}

#[test]
fn zero_ber_inference_is_bit_exact_with_fault_free_inference() {
    let (net, dataset) = trained_lenet(12);
    let samples = &dataset.test()[..16];
    let template = ErrorModel::uniform(0.02, 0.5, 9);

    for precision in [
        Precision::Int4,
        Precision::Int8,
        Precision::Int16,
        Precision::Fp32,
    ] {
        // Per-sample logits must match bit-exactly, not just the headline
        // accuracy: the zero-BER model must be indistinguishable from
        // reliable memory.
        for (x, _) in samples {
            let mut zero_memory = ApproximateMemory::from_model(template.with_ber(0.0), 5);
            let zero_logits = inference::forward_with_faults(&net, x, precision, &mut zero_memory);
            let mut reliable_memory = ApproximateMemory::reliable(5);
            let reliable_logits =
                inference::forward_with_faults(&net, x, precision, &mut reliable_memory);
            assert_eq!(
                zero_logits.data(),
                reliable_logits.data(),
                "zero-BER logits diverged from fault-free logits ({precision:?})"
            );
        }

        let mut zero_memory = ApproximateMemory::from_model(template.with_ber(0.0), 5);
        let zero_acc = inference::evaluate_with_faults(&net, samples, precision, &mut zero_memory);
        let reliable_acc = inference::evaluate_reliable(&net, samples, precision);
        assert_eq!(
            zero_acc, reliable_acc,
            "zero-BER accuracy diverged from fault-free accuracy ({precision:?})"
        );
    }
}

#[test]
fn high_ber_destroys_accuracy_and_low_ber_preserves_it() {
    let (net, dataset) = trained_lenet(13);
    let samples = &dataset.test()[..32];
    let template = ErrorModel::uniform(0.01, 0.5, 3);
    let baseline = inference::evaluate_reliable(&net, samples, Precision::Int8);

    let acc_at = |ber: f64, seed: u64| {
        let mut memory = ApproximateMemory::from_model(template.with_ber(ber), seed);
        inference::evaluate_with_faults(&net, samples, Precision::Int8, &mut memory)
    };

    // Mean over seeds: single-seed accuracy under injection is noisy.
    let mean = |ber: f64| (0..4).map(|s| acc_at(ber, s)).sum::<f32>() / 4.0;
    let low = mean(1e-5);
    let high = mean(0.3);
    let chance = 1.0 / dataset.spec().num_classes as f32;

    assert!(
        low >= baseline - 0.1,
        "BER 1e-5 should preserve accuracy (got {low}, baseline {baseline})"
    );
    assert!(
        high <= baseline - 0.2 || high <= chance + 0.15,
        "BER 0.3 should collapse accuracy (got {high}, baseline {baseline})"
    );
}
