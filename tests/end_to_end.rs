//! Cross-crate integration tests: the full EDEN flow from training through
//! device characterization, boosting, mapping and system-level accounting.

use eden::core::bounding::{BoundingLogic, CorrectionPolicy};
use eden::core::characterize::{coarse_characterize, CoarseConfig};
use eden::core::curricular::{CurricularConfig, CurricularTrainer};
use eden::core::faults::ApproximateMemory;
use eden::core::inference;
use eden::core::mapping::coarse_map;
use eden::dnn::train::{TrainConfig, Trainer};
use eden::dnn::{data::SyntheticVision, zoo, Dataset, Network};
use eden::dram::characterize::{characterize_bank, CharacterizeConfig};
use eden::dram::fit::select_model;
use eden::dram::inject::Injector;
use eden::dram::{ApproxDramDevice, ErrorModel, OperatingPoint, Vendor};
use eden::sysim::{CpuSim, WorkloadProfile};
use eden::tensor::Precision;

fn trained_lenet(seed: u64) -> (Network, SyntheticVision) {
    let dataset = SyntheticVision::tiny(seed);
    let mut net = zoo::lenet(&dataset.spec(), seed);
    Trainer::new(TrainConfig {
        epochs: 4,
        ..TrainConfig::default()
    })
    .train(&mut net, &dataset);
    (net, dataset)
}

#[test]
fn device_fitted_error_model_predicts_device_accuracy() {
    // The Figure 7 validation loop: accuracy under the fitted error model
    // should match accuracy under the simulated "real" device. The paper
    // validates this at operating points EDEN would actually use (small
    // accuracy drop), and reports expected accuracy — so the comparison uses
    // a mildly-aggressive operating point, a characterization with enough
    // rows/reads for stable parameter estimates, and means over a few
    // injection seeds.
    let (net, dataset) = trained_lenet(0);
    let device = ApproxDramDevice::new(Vendor::A, 17);
    let op = OperatingPoint::with_vdd_reduction(0.15);
    let samples = &dataset.test()[..40];

    let observations = characterize_bank(
        &device,
        0,
        &op,
        &CharacterizeConfig {
            rows_per_pattern: 4,
            bitlines_per_row: 1024,
            reads_per_row: 8,
            seed: 2,
        },
    );
    let fitted = select_model(&observations, 5).model;
    // The simulated device flips stored ones more often than stored zeros
    // under voltage scaling; a well-powered characterization must pick that
    // up rather than average it away.
    assert!(
        (fitted.expected_ber() - observations.observed_ber()).abs() / observations.observed_ber()
            < 0.1,
        "fitted BER {} should match observed BER {}",
        fitted.expected_ber(),
        observations.observed_ber()
    );

    let bounding =
        BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
    let partition = eden::dram::geometry::partitions(
        device.geometry(),
        eden::dram::geometry::PartitionGranularity::Bank,
    )[0];

    let mean_acc = |memory_for_seed: &mut dyn FnMut(u64) -> ApproximateMemory| {
        let seeds = [3u64, 4, 5];
        seeds
            .iter()
            .map(|&s| {
                let mut memory = memory_for_seed(s);
                inference::evaluate_with_faults(&net, samples, Precision::Int8, &mut memory)
            })
            .sum::<f32>()
            / seeds.len() as f32
    };

    let device_acc = mean_acc(&mut |s| {
        ApproximateMemory::from_injector(Injector::from_device(device, partition, op), s)
            .with_bounding(bounding)
    });
    let model_acc =
        mean_acc(&mut |s| ApproximateMemory::from_model(fitted, s).with_bounding(bounding));

    assert!(
        (device_acc - model_acc).abs() <= 0.15,
        "fitted model accuracy ({model_acc}) should track device accuracy ({device_acc})"
    );
    // This operating point must actually be usable — both paths well above
    // chance (1/8) and close to the reliable baseline.
    assert!(
        device_acc > 0.7,
        "device accuracy {device_acc} unexpectedly low"
    );
    assert!(
        model_acc > 0.7,
        "model accuracy {model_acc} unexpectedly low"
    );
}

#[test]
fn boosting_then_mapping_yields_reduced_parameters_and_valid_accuracy() {
    let (mut net, dataset) = trained_lenet(1);
    let template = ErrorModel::uniform(0.01, 0.5, 3);

    // Boost.
    CurricularTrainer::new(CurricularConfig {
        epochs: 3,
        step_epochs: 1,
        target_ber: 5e-3,
        ..CurricularConfig::default()
    })
    .retrain(&mut net, &dataset, &template);

    // Characterize.
    let bounding =
        BoundingLogic::calibrated(&net, &dataset.train()[..16], 1.5, CorrectionPolicy::Zero);
    let coarse = coarse_characterize(
        &net,
        &dataset,
        Precision::Int8,
        &template,
        Some(bounding),
        &CoarseConfig {
            eval_samples: 32,
            iterations: 5,
            accuracy_drop: 0.02,
            ..CoarseConfig::default()
        },
    );
    assert!(coarse.max_tolerable_ber > 0.0);

    // Map to vendor A and verify the mapping's BER budget is honoured.
    let mapping = coarse_map(coarse.max_tolerable_ber, &Vendor::A.profile());
    let vendor = Vendor::A.profile();
    assert!(vendor.ber_voltage(mapping.vdd_reduction) <= coarse.max_tolerable_ber + 1e-12);
    assert!(vendor.ber_trcd(mapping.trcd_reduction_ns) <= coarse.max_tolerable_ber + 1e-12);

    // Accuracy at the mapped operating point's BER stays within budget.
    let op_ber = vendor.ber(&OperatingPoint::with_vdd_reduction(mapping.vdd_reduction));
    let mut memory =
        ApproximateMemory::from_model(template.with_ber(op_ber), 9).with_bounding(bounding);
    let acc =
        inference::evaluate_with_faults(&net, &dataset.test()[..48], Precision::Int8, &mut memory);
    assert!(
        acc >= coarse.accuracy_floor - 0.1,
        "accuracy {acc} at the mapped point fell far below the floor {}",
        coarse.accuracy_floor
    );
}

#[test]
fn system_level_gains_follow_the_mapping() {
    // Connect the DNN-side mapping to the system simulators: a larger
    // tolerable BER means a more aggressive operating point, which means
    // more DRAM energy savings on the CPU model.
    let vendor = Vendor::A.profile();
    let small = coarse_map(0.005, &vendor);
    let large = coarse_map(0.05, &vendor);

    let cpu = CpuSim::table4();
    let workload = WorkloadProfile::for_model(zoo::ModelId::Vgg16, Precision::Int8);
    let nominal = cpu.run(&workload, &OperatingPoint::nominal());
    let small_saving = cpu
        .run(
            &workload,
            &OperatingPoint::with_vdd_reduction(small.vdd_reduction),
        )
        .energy_reduction_vs(&nominal);
    let large_saving = cpu
        .run(
            &workload,
            &OperatingPoint::with_vdd_reduction(large.vdd_reduction),
        )
        .energy_reduction_vs(&nominal);
    assert!(large_saving > small_saving);
    assert!(large_saving > 0.2 && large_saving < 0.5);
}

#[test]
fn quantized_zoo_models_run_under_injection_for_all_precisions() {
    // Smoke-test the full precision × error-model matrix on one small model.
    let dataset = SyntheticVision::tiny(5);
    let net = zoo::lenet(&dataset.spec(), 5);
    let samples = &dataset.test()[..8];
    for precision in Precision::all() {
        for model in [
            ErrorModel::uniform(0.01, 0.3, 1),
            ErrorModel::bitline(0.01, 0.3, 0.8, 1),
            ErrorModel::wordline(0.01, 0.3, 0.8, 1),
            ErrorModel::data_dependent(0.01, 0.4, 0.2, 1),
        ] {
            let mut memory = ApproximateMemory::from_model(model, 2);
            let acc = inference::evaluate_with_faults(&net, samples, precision, &mut memory);
            assert!((0.0..=1.0).contains(&acc));
        }
    }
}
