//! Reproducibility: the full EDEN pipeline must be a pure function of its
//! seeds — two runs with identical configuration produce identical
//! characterization and mapping outputs, and identical boosted networks.

use eden::core::characterize::CoarseConfig;
use eden::core::curricular::CurricularConfig;
use eden::core::{EdenConfig, EdenPipeline};
use eden::dnn::train::{TrainConfig, Trainer};
use eden::dnn::{data::SyntheticVision, zoo, Dataset, Network};
use eden::dram::characterize::CharacterizeConfig;
use eden::dram::{ApproxDramDevice, Vendor};

fn trained_lenet(seed: u64) -> (Network, SyntheticVision) {
    let dataset = SyntheticVision::tiny(seed);
    let mut net = zoo::lenet(&dataset.spec(), seed);
    Trainer::new(TrainConfig {
        epochs: 3,
        ..TrainConfig::default()
    })
    .train(&mut net, &dataset);
    (net, dataset)
}

fn quick_config(seed: u64) -> EdenConfig {
    EdenConfig {
        retraining: CurricularConfig {
            epochs: 2,
            step_epochs: 1,
            ..CurricularConfig::default()
        },
        characterization: CoarseConfig {
            eval_samples: 24,
            iterations: 4,
            ..CoarseConfig::default()
        },
        dram_characterization: CharacterizeConfig {
            rows_per_pattern: 1,
            bitlines_per_row: 256,
            reads_per_row: 2,
            seed,
        },
        iterations: 1,
        accuracy_drop: 0.03,
        seed,
        ..EdenConfig::default()
    }
}

#[test]
fn pipeline_is_deterministic_for_a_fixed_seed() {
    let (net, dataset) = trained_lenet(21);
    let device = ApproxDramDevice::new(Vendor::A, 9);

    let mut net_a = net.clone();
    let outcome_a = EdenPipeline::new(quick_config(7)).run(&mut net_a, &dataset, &device);
    let mut net_b = net.clone();
    let outcome_b = EdenPipeline::new(quick_config(7)).run(&mut net_b, &dataset, &device);

    // Identical characterization and mapping outputs, field for field.
    assert_eq!(outcome_a, outcome_b);
    // The boosted networks behave identically too (same forward outputs on
    // every test sample).
    for (x, _) in dataset.test() {
        assert_eq!(net_a.forward(x), net_b.forward(x));
    }
}

#[test]
fn different_seeds_produce_different_retraining_trajectories() {
    let (net, dataset) = trained_lenet(22);
    let device = ApproxDramDevice::new(Vendor::A, 9);

    let mut net_a = net.clone();
    let outcome_a = EdenPipeline::new(quick_config(1)).run(&mut net_a, &dataset, &device);
    let mut net_b = net.clone();
    let outcome_b = EdenPipeline::new(quick_config(2)).run(&mut net_b, &dataset, &device);

    // The error model is fitted from differently-seeded characterization
    // reads and the retraining shuffles/injects with different streams, so
    // the boosted weights must differ somewhere.
    let differs = dataset
        .test()
        .iter()
        .any(|(x, _)| net_a.forward(x) != net_b.forward(x));
    assert!(
        differs || outcome_a != outcome_b,
        "independent seeds produced bit-identical pipelines"
    );
}
