//! # EDEN — Energy-Efficient DNN Inference Using Approximate DRAM
//!
//! A Rust reproduction of *Koppula et al., "EDEN: Enabling Energy-Efficient,
//! High-Performance Deep Neural Network Inference Using Approximate DRAM"*
//! (MICRO 2019).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`tensor`] — dense tensors, NN operators and bit-exact quantization;
//! * [`dnn`] — layers, networks, training, synthetic datasets, the model zoo;
//! * [`dram`] — the approximate DRAM device, error models, characterization
//!   and the DRAM energy model;
//! * [`sysim`] — CPU / GPU / accelerator system models;
//! * [`core`] — the EDEN framework: curricular retraining, error-tolerance
//!   characterization, DNN→DRAM mapping, and the end-to-end pipeline.
//!
//! See `README.md` for a tour and the workspace crate map, `examples/` for
//! runnable scenarios, and `crates/bench/src/bin/` for the binaries that
//! regenerate the paper's tables and figures.
//!
//! # Quickstart
//!
//! ```
//! use eden::core::faults::ApproximateMemory;
//! use eden::core::inference;
//! use eden::dnn::{data::SyntheticVision, zoo, Dataset};
//! use eden::dram::ErrorModel;
//! use eden::tensor::Precision;
//!
//! let dataset = SyntheticVision::tiny(0);
//! let net = zoo::lenet(&dataset.spec(), 1);
//! let mut memory = ApproximateMemory::from_model(ErrorModel::uniform(0.001, 0.5, 7), 3);
//! let accuracy =
//!     inference::evaluate_with_faults(&net, &dataset.test()[..8], Precision::Int8, &mut memory);
//! assert!((0.0..=1.0).contains(&accuracy));
//! ```

pub use eden_core as core;
pub use eden_dnn as dnn;
pub use eden_dram as dram;
pub use eden_sysim as sysim;
pub use eden_tensor as tensor;
