//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships a
//! small, deterministic implementation of exactly the API surface the EDEN
//! crates use: [`rngs::StdRng`], [`SeedableRng`], [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`, `fill`) and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! fast, and fully reproducible from a `u64` seed. The streams do **not**
//! match upstream `rand`'s ChaCha-based `StdRng`; everything in this
//! repository only relies on determinism for a fixed seed, never on specific
//! stream values.

/// Low-level entropy source, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// RNGs constructible from a fixed seed, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro requires a non-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

/// Types samplable uniformly from the full domain (the `Standard`
/// distribution in upstream `rand`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample (`rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }

    #[inline]
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0f32..5.0);
            assert!((-3.0..5.0).contains(&x));
            let n = rng.gen_range(10usize..20);
            assert!((10..20).contains(&n));
            let m = rng.gen_range(-8i32..=8);
            assert!((-8..=8).contains(&m));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
