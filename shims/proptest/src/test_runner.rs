//! The case runner: deterministic generation, panic capture, greedy shrinking.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on shrinking steps after a failure.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_shrink_iters: 4096,
        }
    }
}

thread_local! {
    static PROBING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that stays silent while this
/// thread is probing candidates during shrinking, so a single failure does
/// not spew hundreds of expected panics to stderr.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !PROBING.with(|p| p.get()) {
                default(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Execute one property: `cases` deterministic cases, then greedy shrinking
/// on the first failure. Panics (test failure) with the minimal
/// counterexample found.
pub fn run<S, F>(name: &str, config: &ProptestConfig, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    install_quiet_hook();
    let base_seed = fnv1a(name);

    let probe = |value: S::Value| -> Result<(), String> {
        PROBING.with(|p| p.set(true));
        let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
        PROBING.with(|p| p.set(false));
        outcome.map_err(|e| panic_message(&*e))
    };

    for case in 0..config.cases {
        let mut rng =
            StdRng::seed_from_u64(base_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let value = strategy.generate(&mut rng);
        let Err(first_message) = probe(value.clone()) else {
            continue;
        };

        // Greedy shrink: repeatedly take the first simpler candidate that
        // still fails, until no candidate fails or the budget runs out.
        let mut minimal = value;
        let mut message = first_message;
        let mut budget = config.max_shrink_iters;
        'outer: while budget > 0 {
            for cand in strategy.shrink(&minimal) {
                budget -= 1;
                if let Err(m) = probe(cand.clone()) {
                    minimal = cand;
                    message = m;
                    continue 'outer;
                }
                if budget == 0 {
                    break;
                }
            }
            break;
        }

        panic!(
            "proptest '{name}' failed at case {case}/{cases} (seed {seed:#x}).\n\
             minimal failing input: {minimal:?}\n\
             assertion: {message}",
            cases = config.cases,
            seed = base_seed,
        );
    }
}

/// `prop_assert!` — like `assert!` but attributed to the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
}

/// The `proptest!` block macro: wraps each `fn name(arg in strategy, ..)`
/// into a `#[test]` driven by [`run`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __strategy = ($($strat,)+);
            let __config = $cfg;
            $crate::test_runner::run(
                stringify!($name),
                &__config,
                __strategy,
                |($($arg,)+)| $body,
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn passing_property_holds(a in 0u32..100, b in 0u32..100) {
            prop_assert!(a + b <= 198);
        }

        #[test]
        fn vectors_respect_size_bounds(v in prop::collection::vec(0i32..10, 1..8)) {
            prop_assert!((1..8).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }
    }

    #[test]
    fn failing_property_shrinks_to_minimal_case() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run(
                "shrink_probe",
                &ProptestConfig::with_cases(64),
                (0u32..1000,),
                |(x,)| {
                    assert!(x < 500, "too big");
                },
            );
        });
        let msg = super::panic_message(&*result.expect_err("property must fail"));
        // Greedy halving from any failing x >= 500 must land exactly on 500.
        assert!(msg.contains("minimal failing input: (500,)"), "got: {msg}");
    }

    #[test]
    fn vec_shrinking_removes_irrelevant_elements() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run(
                "vec_shrink_probe",
                &ProptestConfig::with_cases(64),
                (crate::collection::vec(0i32..100, 0..20),),
                |(v,)| {
                    assert!(!v.iter().any(|&x| x >= 50), "contains big element");
                },
            );
        });
        let msg = super::panic_message(&*result.expect_err("property must fail"));
        // The minimal counterexample is a single-element vector [50].
        assert!(msg.contains("minimal failing input: ([50],)"), "got: {msg}");
    }
}
