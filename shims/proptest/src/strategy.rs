//! Strategies: value generation plus greedy shrinking.

use rand::rngs::StdRng;
use rand::Rng;

/// A source of test values with optional shrinking.
///
/// Unlike upstream proptest (which shrinks through a `ValueTree`), this shim
/// shrinks directly on values: [`Strategy::shrink`] proposes a batch of
/// strictly "simpler" candidates and the runner greedily walks them while the
/// test keeps failing.
pub trait Strategy {
    type Value: Clone + std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Propose simpler variants of `value`. An empty vector ends shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Map generated values through `f`. Mapped strategies do not shrink
    /// (the mapping is not invertible); prefer a bespoke [`Strategy`] impl
    /// where shrinking matters.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: Clone + std::fmt::Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Keep only values satisfying `pred` (rejection sampling, bounded).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            pred,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Always yields a fixed value (`proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: Clone + std::fmt::Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    pred: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1024 consecutive candidates",
            self.whence
        );
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        self.source
            .shrink(value)
            .into_iter()
            .filter(|v| (self.pred)(v))
            .collect()
    }
}

/// Uniform strategy over `[lo, hi]` for a primitive numeric type.
#[derive(Clone, Copy, Debug)]
pub struct RangeStrategy<T> {
    lo: T,
    hi: T,
    /// Inclusive upper bound (`..=`) vs exclusive (`..`).
    inclusive: bool,
}

impl<T: Copy> RangeStrategy<T> {
    pub fn new(lo: T, hi: T, inclusive: bool) -> Self {
        RangeStrategy { lo, hi, inclusive }
    }
}

/// The value in the range with the smallest magnitude — the shrink target.
macro_rules! signed_origin {
    ($lo:expr, $hi:expr, $zero:expr) => {
        if $lo <= $zero && $zero <= $hi {
            $zero
        } else if $lo > $zero {
            $lo
        } else {
            $hi
        }
    };
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeStrategy<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                if self.inclusive {
                    rng.gen_range(self.lo..=self.hi)
                } else {
                    rng.gen_range(self.lo..self.hi)
                }
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let hi_in = if self.inclusive { self.hi } else { self.hi - 1 };
                let origin: $t = signed_origin!(self.lo, hi_in, 0 as $t);
                if v == origin {
                    return Vec::new();
                }
                // Most-aggressive-first ladder: the origin, then values
                // approaching `v` geometrically (v - d/2, v - d/4, ..., v-1).
                // The runner's greedy walk over this ladder bisects onto the
                // exact failure boundary in O(log² d) probes.
                let d = (v as i128) - (origin as i128);
                let mut out = vec![origin];
                let mut step = d / 2;
                while step.abs() >= 1 {
                    let cand = ((v as i128) - step) as $t;
                    if cand != origin && cand != v && !out.contains(&cand) {
                        out.push(cand);
                    }
                    step /= 2;
                }
                out
            }
        }

        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                RangeStrategy::new(self.start, self.end, false).generate(rng)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                RangeStrategy::new(self.start, self.end, false).shrink(value)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                RangeStrategy::new(*self.start(), *self.end(), true).generate(rng)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                RangeStrategy::new(*self.start(), *self.end(), true).shrink(value)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeStrategy<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.lo..self.hi)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let origin: $t = signed_origin!(self.lo, self.hi, 0.0);
                let dist = v - origin;
                if dist.abs() < 1e-6 {
                    return Vec::new();
                }
                // Same ladder shape as the integer strategies: origin first,
                // then geometrically approaching `v`.
                let mut out = vec![origin];
                let mut step = dist / 2.0;
                while step.abs() >= 1e-6 && step.abs() >= f32::EPSILON as $t * v.abs() {
                    out.push(v - step);
                    step /= 2.0;
                    if out.len() >= 12 {
                        break;
                    }
                }
                out
            }
        }

        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                RangeStrategy::new(self.start, self.end, false).generate(rng)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                RangeStrategy::new(self.start, self.end, false).shrink(value)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// Uniform over `{false, true}`; `true` shrinks to `false`.
#[derive(Clone, Copy, Debug)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+ );)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// See [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: crate::collection::SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub fn new(element: S, size: crate::collection::SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.max - self.size.min <= 1 {
            self.size.min
        } else {
            rng.gen_range(self.size.min..self.size.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let len = value.len();

        // 1. Structural shrinks: drop the back half, then single elements.
        if len > self.size.min {
            let half = (len / 2).max(self.size.min);
            if half < len {
                out.push(value[..half].to_vec());
            }
            for i in (0..len).rev() {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
                if out.len() >= 16 {
                    break;
                }
            }
        }

        // 2. Element-wise shrinks, one position at a time.
        for (i, elem) in value.iter().enumerate() {
            for cand in self.element.shrink(elem) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
            if out.len() >= 64 {
                break;
            }
        }
        out
    }
}
