//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest used by this workspace's property tests:
//!
//! * [`strategy::Strategy`] — value generation plus greedy shrinking;
//! * range strategies over the primitive numeric types, tuple strategies,
//!   [`collection::vec`], [`strategy::Just`], [`strategy::Map`] (via
//!   [`strategy::Strategy::prop_map`]) and [`arbitrary::any`];
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`), and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros;
//! * a runner that, on failure, shrinks to a locally minimal counterexample
//!   and reports it together with the failing case's seed.
//!
//! Generation is deterministic per test name and case index, so failures
//! reproduce across runs. Case count defaults to 256 and can be overridden
//! with the `PROPTEST_CASES` environment variable or
//! `ProptestConfig::with_cases`.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    use super::strategy::{RangeStrategy, Strategy};

    /// Types with a canonical whole-domain strategy (subset of
    /// `proptest::arbitrary::Arbitrary`).
    pub trait Arbitrary: Sized + Clone + std::fmt::Debug + 'static {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = RangeStrategy<$t>;
                fn arbitrary() -> Self::Strategy {
                    RangeStrategy::new(<$t>::MIN, <$t>::MAX, true)
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        type Strategy = super::strategy::BoolStrategy;
        fn arbitrary() -> Self::Strategy {
            super::strategy::BoolStrategy
        }
    }

    impl Arbitrary for f32 {
        type Strategy = RangeStrategy<f32>;
        fn arbitrary() -> Self::Strategy {
            RangeStrategy::new(-1.0e6, 1.0e6, false)
        }
    }

    impl Arbitrary for f64 {
        type Strategy = RangeStrategy<f64>;
        fn arbitrary() -> Self::Strategy {
            RangeStrategy::new(-1.0e6, 1.0e6, false)
        }
    }

    /// `proptest::arbitrary::any`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

pub mod collection {
    use super::strategy::{Strategy, VecStrategy};

    /// Size specification for [`vec()`]: an exact length or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        /// Exclusive upper bound.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(
                r.start < r.end,
                "empty size range for prop::collection::vec"
            );
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// `proptest::collection::vec` — a vector whose length is drawn from
    /// `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// The public prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}
