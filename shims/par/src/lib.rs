//! Offline stand-in for the slice of `rayon` this workspace needs.
//!
//! The build environment has no access to crates.io, so this crate implements
//! a small work-stealing thread pool plus the rayon-shaped entry points the
//! EDEN crates use: [`scope`], [`join`], [`par_map`] and
//! [`par_map_chunks_mut`]. The API mirrors rayon closely enough that moving
//! to the real crate later is a mechanical change.
//!
//! # Pool selection
//!
//! Every entry point runs on the *current* pool, resolved in order:
//!
//! 1. the pool owning the current worker thread (nested parallelism),
//! 2. a pool installed on this thread via [`ThreadPool::install`],
//! 3. the lazily-created global pool.
//!
//! The global pool is sized from the `EDEN_THREADS` environment variable if
//! set (clamped to at least 1), otherwise from
//! [`std::thread::available_parallelism`]. Binaries can override the size
//! *before first use* with [`configure_threads`] (e.g. from a `--threads`
//! CLI flag).
//!
//! # Determinism contract
//!
//! The pool makes **no ordering guarantees**: tasks run whenever a worker
//! picks them up. Callers that need bit-identical results for any thread
//! count (everything in this workspace does — see the repository README's
//! threading-model section) must make each task's output a pure function of
//! its *index*, never of execution order: write results into per-index slots
//! ([`par_map`] does this) and derive any randomness from per-index seeds.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit of work queued on the pool. The `'static` bound is a lie told by
/// [`Scope::spawn`] (see the safety comment there); jobs never outlive the
/// scope that spawned them because the scope blocks until its counter drains.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// Externally-submitted jobs (from threads that are not pool workers).
    injector: Mutex<VecDeque<Job>>,
    /// Per-worker local deques. A worker pushes and pops its own queue at the
    /// front and steals from the *back* of other workers' queues.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Wakes idle workers when work arrives.
    wakeup: Condvar,
    /// Paired with `wakeup`; guards nothing but the sleep itself.
    sleep_lock: Mutex<()>,
    /// Number of threads parked (or about to park) on `wakeup`. Lets the
    /// task-push/-completion hot path skip the sleep lock entirely while
    /// everyone is busy.
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
}

impl Shared {
    /// Grab one job: own queue first, then the injector, then steal.
    fn find_job(&self, worker: Option<usize>) -> Option<Job> {
        if let Some(w) = worker {
            if let Some(job) = self.locals[w].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let n = self.locals.len();
        let start = worker.map(|w| w + 1).unwrap_or(0);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == worker {
                continue;
            }
            if let Some(job) = self.locals[victim].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        None
    }

    /// Whether any queue currently holds a job.
    fn has_work(&self) -> bool {
        !self.injector.lock().unwrap().is_empty()
            || self.locals.iter().any(|q| !q.lock().unwrap().is_empty())
    }

    fn push(&self, job: Job, worker: Option<usize>) {
        match worker {
            Some(w) => self.locals[w].lock().unwrap().push_front(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        self.notify();
    }

    /// Wakes every parked thread; a no-op while nobody sleeps, so the
    /// push/completion hot path stays lock-free when all workers are busy.
    ///
    /// Lost-wakeup freedom: sleepers increment `sleepers` *before* checking
    /// their wait condition (both under `sleep_lock`), and this method reads
    /// `sleepers` *after* the state change it publishes (job pushed, counter
    /// decremented, shutdown set) — all `SeqCst`. So either this read sees
    /// the sleeper (and the locked notify reaches it), or the sleeper's
    /// later condition check sees the published state and never parks.
    fn notify(&self) {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        let _guard = self.sleep_lock.lock().unwrap();
        self.wakeup.notify_all();
    }

    /// Parks the current thread on `wakeup` unless `should_wake` already
    /// holds. Implements the sleeper-count protocol described on
    /// [`Shared::notify`].
    fn park_unless(&self, should_wake: impl Fn() -> bool) {
        let guard = self.sleep_lock.lock().unwrap();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        if should_wake() {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let guard = self.wakeup.wait(guard).unwrap();
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        drop(guard);
    }
}

/// A fixed-size work-stealing thread pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

thread_local! {
    /// `(pool, worker index)` of the worker thread we are on, if any.
    static WORKER: std::cell::RefCell<Option<(Arc<Shared>, usize)>> =
        const { std::cell::RefCell::new(None) };
    /// Pool installed on this (non-worker) thread via `ThreadPool::install`.
    static INSTALLED: std::cell::RefCell<Vec<Arc<Shared>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            wakeup: Condvar::new(),
            sleep_lock: Mutex::new(()),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("eden-par-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("failed to spawn eden-par worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.shared.locals.len()
    }

    /// Runs `f` on the calling thread with this pool installed as the current
    /// pool: [`scope`], [`join`] and the `par_*` helpers inside `f` execute
    /// their tasks on this pool's workers.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED.with(|st| st.borrow_mut().push(Arc::clone(&self.shared)));
        struct Pop;
        impl Drop for Pop {
            fn drop(&mut self) {
                INSTALLED.with(|st| {
                    st.borrow_mut().pop();
                });
            }
        }
        let _pop = Pop;
        f()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.notify();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER.with(|w| *w.borrow_mut() = Some((Arc::clone(&shared), index)));
    loop {
        if let Some(job) = shared.find_job(Some(index)) {
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Park until new work (or shutdown) arrives; see `Shared::notify`
        // for why the unbounded wait cannot miss a wakeup.
        shared.park_unless(|| shared.has_work() || shared.shutdown.load(Ordering::SeqCst));
    }
}

/// Requested global pool size, consulted once at lazy initialization.
static REQUESTED_THREADS: AtomicUsize = AtomicUsize::new(0);
static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// Default worker count: `EDEN_THREADS` if set, else the machine parallelism.
fn default_threads() -> usize {
    if let Ok(v) = std::env::var("EDEN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        let requested = REQUESTED_THREADS.load(Ordering::SeqCst);
        let n = if requested > 0 {
            requested
        } else {
            default_threads()
        };
        ThreadPool::new(n)
    })
}

/// Requests `threads` workers for the global pool. Takes effect only if the
/// global pool has not been created yet; returns whether it did. Binaries
/// call this from `main` before any parallel work (the `--threads` flag).
pub fn configure_threads(threads: usize) -> bool {
    REQUESTED_THREADS.store(threads.max(1), Ordering::SeqCst);
    GLOBAL.get().is_none()
}

/// Resolves the pool the current thread should submit to.
fn current_shared() -> Arc<Shared> {
    if let Some(shared) = WORKER.with(|w| w.borrow().as_ref().map(|(s, _)| Arc::clone(s))) {
        return shared;
    }
    if let Some(shared) = INSTALLED.with(|st| st.borrow().last().cloned()) {
        return shared;
    }
    Arc::clone(&global().shared)
}

/// Worker index of the current thread *on the given pool*, if any.
fn worker_index_on(shared: &Arc<Shared>) -> Option<usize> {
    WORKER.with(|w| {
        w.borrow()
            .as_ref()
            .filter(|(s, _)| Arc::ptr_eq(s, shared))
            .map(|(_, i)| *i)
    })
}

/// Number of threads in the current pool.
pub fn current_num_threads() -> usize {
    current_shared().locals.len()
}

/// A scope in which tasks borrowing the enclosing stack frame can be spawned.
/// All spawned tasks complete before [`scope`] returns.
pub struct Scope<'scope> {
    shared: Arc<Shared>,
    pending: Arc<AtomicUsize>,
    panic: Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>>,
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `f` onto the pool. `f` may borrow from the enclosing frame.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let pending = Arc::clone(&self.pending);
        let panic = Arc::clone(&self.panic);
        let notify = Arc::clone(&self.shared);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(p);
                }
            }
            pending.fetch_sub(1, Ordering::SeqCst);
            // Wake any thread parked in a scope drain waiting for this task.
            notify.notify();
        });
        // SAFETY: `scope` drains `pending` to zero before control can leave
        // the scope frame — on the normal path *and* on unwind, via
        // `DrainGuard`'s destructor — so the job (and everything it borrows
        // with lifetime 'scope) outlives its execution. This is the standard
        // scoped-task lifetime erasure, identical in spirit to
        // `std::thread::scope`.
        let job: Job = unsafe { std::mem::transmute(job) };
        self.shared.push(job, worker_index_on(&self.shared));
    }
}

/// Blocks until a scope's task counter drains to zero, executing pool work
/// on the blocked thread in the meantime. Lives in a `Drop` impl so the
/// drain also happens when the scope closure unwinds — returning early with
/// tasks still borrowing the unwound frame would be use-after-free.
struct DrainGuard<'a> {
    shared: &'a Arc<Shared>,
    pending: &'a AtomicUsize,
    worker: Option<usize>,
}

impl Drop for DrainGuard<'_> {
    fn drop(&mut self) {
        // Tasks never unwind out of `job()` (Scope::spawn wraps every body
        // in catch_unwind), so helping here is safe even mid-unwind.
        while self.pending.load(Ordering::SeqCst) != 0 {
            if let Some(job) = self.shared.find_job(self.worker) {
                job();
                continue;
            }
            // Nothing stealable: park until a task completion or new work
            // wakes us (see `Shared::notify` for the lost-wakeup argument).
            self.shared
                .park_unless(|| self.pending.load(Ordering::SeqCst) == 0 || self.shared.has_work());
        }
    }
}

/// Creates a scope on the current pool, runs `f`, and blocks until every
/// task spawned inside it has completed — even if `f` itself panics. While
/// blocked, the calling thread executes pending pool work itself, so nested
/// scopes cannot deadlock.
///
/// Panics from spawned tasks are propagated (the first one wins) after all
/// tasks of the scope have drained; if `f` panics, its panic wins and task
/// panics are discarded.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let shared = current_shared();
    let s = Scope {
        shared: Arc::clone(&shared),
        pending: Arc::new(AtomicUsize::new(0)),
        panic: Arc::new(Mutex::new(None)),
        _marker: std::marker::PhantomData,
    };
    let guard = DrainGuard {
        shared: &shared,
        pending: &s.pending,
        worker: worker_index_on(&shared),
    };
    let result = f(&s);
    drop(guard);
    if let Some(p) = s.panic.lock().unwrap().take() {
        resume_unwind(p);
    }
    result
}

/// Runs `a` on the calling thread and `b` on the pool, returning both
/// results. Mirrors `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    let mut rb = None;
    let ra = scope(|s| {
        s.spawn(|| rb = Some(b()));
        a()
    });
    (ra, rb.expect("join task did not complete"))
}

/// Work items per spawned task for the slice helpers: enough tasks per
/// worker for stealing to balance load, without drowning in task overhead.
fn grain(len: usize, threads: usize) -> usize {
    len.div_ceil(threads.saturating_mul(4).max(1)).max(1)
}

/// Applies `f(index, &item)` to every item in parallel and collects the
/// results **in index order** (execution order never affects the output).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = grain(n, current_num_threads());
    // Single task (always the case on a 1-thread pool): run inline, skipping
    // scope and queue traffic entirely. Identical output — results are a
    // pure function of the index either way.
    if chunk >= n {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    scope(|s| {
        for (c, (slots, input)) in out.chunks_mut(chunk).zip(items.chunks(chunk)).enumerate() {
            let f = &f;
            let base = c * chunk;
            s.spawn(move || {
                for (j, (slot, item)) in slots.iter_mut().zip(input).enumerate() {
                    *slot = Some(f(base + j, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("par_map slot not filled"))
        .collect()
}

/// Splits `data` into chunks of `chunk_size` and applies
/// `f(chunk_index, chunk)` to each in parallel, collecting the per-chunk
/// results in chunk order. The fixed chunk geometry (independent of the
/// thread count) is what lets callers attach a deterministic seed to each
/// chunk.
pub fn par_map_chunks_mut<T, R, F>(data: &mut [T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n = data.len().div_ceil(chunk_size);
    if n == 0 {
        return Vec::new();
    }
    // One chunk: run inline. The chunk geometry (hence the output) only
    // depends on `chunk_size`, so this is indistinguishable from the
    // spawning path.
    if n == 1 {
        return vec![f(0, data)];
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    scope(|s| {
        for ((c, chunk), slot) in data.chunks_mut(chunk_size).enumerate().zip(out.iter_mut()) {
            let f = &f;
            s.spawn(move || *slot = Some(f(c, chunk)));
        }
    });
    out.into_iter()
        .map(|r| r.expect("par_map_chunks_mut slot not filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn par_map_preserves_index_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_identical_for_any_thread_count() {
        let items: Vec<u64> = (0..513).collect();
        let run = |threads: usize| {
            ThreadPool::new(threads).install(|| par_map(&items, |i, &x| x.wrapping_mul(i as u64)))
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ThreadPool::new(2);
        let total: usize = pool.install(|| {
            let outer: Vec<usize> = par_map(&[10usize, 20, 30], |_, &n| {
                let inner: Vec<usize> = par_map(&(0..n).collect::<Vec<_>>(), |_, &x| x);
                inner.iter().sum()
            });
            outer.iter().sum()
        });
        assert_eq!(total, 45 + 190 + 435);
    }

    #[test]
    fn par_map_chunks_mut_covers_every_element() {
        let mut data = vec![0u32; 100];
        let counts = par_map_chunks_mut(&mut data, 7, |c, chunk| {
            for v in chunk.iter_mut() {
                *v = c as u32 + 1;
            }
            chunk.len()
        });
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[99], 15); // chunk 14, 1-based
    }

    #[test]
    fn scope_borrows_the_enclosing_frame() {
        let mut results = [0usize; 16];
        scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move || *slot = i * i);
            }
        });
        assert_eq!(results[15], 225);
    }

    #[test]
    fn scope_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|| panic!("boom"));
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn scope_drains_spawned_tasks_when_the_closure_panics() {
        // If the scope closure unwinds, spawned tasks still borrow the
        // enclosing frame — scope must finish them before the unwind
        // continues past that frame.
        let flags: Vec<AtomicBool> = (0..64).map(|_| AtomicBool::new(false)).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                for flag in &flags {
                    s.spawn(|| {
                        std::thread::sleep(Duration::from_micros(50));
                        flag.store(true, Ordering::SeqCst);
                    });
                }
                panic!("closure dies with tasks in flight");
            })
        }));
        assert!(caught.is_err());
        // Every task observed a live frame and completed.
        assert!(flags.iter().all(|f| f.load(Ordering::SeqCst)));
    }

    #[test]
    fn install_overrides_the_pool() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        let mut data: Vec<u8> = Vec::new();
        assert!(par_map_chunks_mut(&mut data, 4, |_, _| 0).is_empty());
    }
}
