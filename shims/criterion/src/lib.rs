//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the `eden-bench` harnesses use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, `criterion_group!`, `criterion_main!` — backed by a simple
//! wall-clock loop: per benchmark it runs one warm-up iteration, then timed
//! samples until either `sample_size` samples or a ~2 s budget is reached,
//! and reports min / median / mean / max per-iteration time.
//!
//! Two defenses against timer noise, both sized by the warm-up iteration:
//!
//! * **Batching**: a routine faster than the minimum sample time (default
//!   5 ms) is run `k` times per sample and the per-iteration time recorded
//!   as `elapsed / k`, so sub-microsecond benchmarks measure well above
//!   clock granularity instead of a single ~100 ns tick.
//! * **Median**: the reported median (lower median for even counts) is
//!   robust to the scheduling outliers that stretch `max` and drag `mean`,
//!   so downstream consumers (the `bench_gate` machine-speed calibration)
//!   can rely on it.
//!
//! No further statistical analysis, outlier rejection, or HTML reports —
//! numbers are indicative. The value of keeping the harnesses compiling is
//! that switching to real criterion later is a manifest-only change.
//!
//! # Machine-readable output
//!
//! When the `EDEN_BENCH_JSON` environment variable names a file, every
//! benchmark additionally appends one JSON object per line:
//!
//! ```json
//! {"group":"g","id":"id","mean_ns":123,"median_ns":110,"min_ns":100,"max_ns":150,"samples":15}
//! ```
//!
//! The file is JSON-lines (append-safe across the multiple bench binaries of
//! a `cargo bench` run); the `bench_gate` binary in `eden-bench` consumes it
//! to enforce the CI performance-regression gate. Pass an **absolute** path:
//! cargo runs bench binaries with the package directory (not the workspace
//! root) as their working directory.

use std::fmt::Display;
use std::io::Write;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            min_sample_time: Duration::from_millis(5),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    min_sample_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Minimum wall-clock time one recorded sample must span (default 5 ms):
    /// routines faster than this are batched — run `k` times per sample with
    /// `elapsed / k` recorded — so the measurement sits well above timer
    /// granularity. Not part of real criterion's API; criterion's own
    /// warm-up/iteration planner serves the same purpose there.
    pub fn min_sample_time(&mut self, d: Duration) -> &mut Self {
        self.min_sample_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.measurement_time,
            max_samples: self.sample_size,
            min_sample_time: self.min_sample_time,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    max_samples: usize,
    min_sample_time: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly, recording one sample per measurement: one
    /// warm-up iteration (which doubles as the batch-size probe), then up to
    /// `sample_size` timed samples within the group's time budget. Routines
    /// faster than the group's minimum sample time are batched: each sample
    /// times `k` back-to-back calls and records `elapsed / k`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let probe = Instant::now();
        black_box(routine());
        let est = probe.elapsed();
        let batch: u32 = if est >= self.min_sample_time {
            1
        } else {
            // Estimate floored to 1 ns so the division is finite; capped so
            // a mis-probed (e.g. lazily-initialized) routine cannot pin one
            // sample for minutes.
            (self
                .min_sample_time
                .as_nanos()
                .div_ceil(est.as_nanos().max(1)))
            .min(10_000_000) as u32
        };
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / batch);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            eprintln!("  {group}/{id}: no samples collected");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let median = median(&self.samples);
        eprintln!(
            "  {group}/{id}: [{min:?} {median:?} {mean:?} {max:?}] ({n} samples)",
            n = self.samples.len()
        );
        if let Ok(path) = std::env::var("EDEN_BENCH_JSON") {
            if !path.is_empty() {
                if let Err(e) = append_json_line(
                    &path,
                    group,
                    id,
                    *min,
                    median,
                    mean,
                    *max,
                    self.samples.len(),
                ) {
                    eprintln!("  (EDEN_BENCH_JSON: failed to write {path}: {e})");
                }
            }
        }
    }
}

/// Lower median of a non-empty sample set: robust to the scheduling
/// outliers that stretch `max` and drag `mean`.
fn median(samples: &[Duration]) -> Duration {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) / 2]
}

/// Appends one JSON-lines record for a finished benchmark. Group and id come
/// from benchmark source code, so they are embedded verbatim (no escaping).
#[allow(clippy::too_many_arguments)]
fn append_json_line(
    path: &str,
    group: &str,
    id: &str,
    min: Duration,
    median: Duration,
    mean: Duration,
    max: Duration,
    samples: usize,
) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(
        file,
        "{{\"group\":\"{group}\",\"id\":\"{id}\",\"mean_ns\":{},\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{samples}}}",
        mean.as_nanos(),
        median.as_nanos(),
        min.as_nanos(),
        max.as_nanos(),
    )
}

/// `criterion_group!(name, target1, target2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group1, group2, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter("n=10"), &10u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs_and_collects_samples() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }

    #[test]
    fn json_lines_are_appended_and_parseable() {
        let path = std::env::temp_dir().join(format!("eden_bench_{}.json", std::process::id()));
        let path_str = path.to_str().unwrap();
        append_json_line(
            path_str,
            "g",
            "id",
            Duration::from_nanos(100),
            Duration::from_nanos(110),
            Duration::from_nanos(123),
            Duration::from_nanos(150),
            15,
        )
        .unwrap();
        append_json_line(
            path_str,
            "g2",
            "id2",
            Duration::from_nanos(1),
            Duration::from_nanos(2),
            Duration::from_nanos(2),
            Duration::from_nanos(3),
            1,
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"group\":\"g\",\"id\":\"id\",\"mean_ns\":123,\"median_ns\":110,\"min_ns\":100,\"max_ns\":150,\"samples\":15}"
        );
    }

    #[test]
    fn median_is_the_lower_middle_sample() {
        let ns = |n| Duration::from_nanos(n);
        assert_eq!(median(&[ns(5)]), ns(5));
        assert_eq!(median(&[ns(9), ns(1), ns(5)]), ns(5));
        // Even count: the lower of the two middle samples.
        assert_eq!(median(&[ns(4), ns(1), ns(9), ns(6)]), ns(4));
        // Robust to one huge outlier.
        assert_eq!(median(&[ns(10), ns(11), ns(12), ns(4_000_000)]), ns(11));
    }

    #[test]
    fn fast_routines_are_batched_above_timer_granularity() {
        // A near-free routine must be batched: per-sample times then sit at
        // the per-iteration average, far below the 5 ms minimum sample span,
        // and never at the raw ~100 ns clock-tick floor times the batch.
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: Duration::from_millis(200),
            max_samples: 4,
            min_sample_time: Duration::from_millis(5),
        };
        bencher.iter(|| black_box(1u64).wrapping_mul(3));
        assert!(!bencher.samples.is_empty());
        for s in &bencher.samples {
            assert!(
                *s < Duration::from_micros(1),
                "batched per-iteration time should be tiny, got {s:?}"
            );
        }
    }
}
