//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the `eden-bench` harnesses use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, `criterion_group!`, `criterion_main!` — backed by a simple
//! wall-clock loop: per benchmark it runs one warm-up iteration, then timed
//! iterations until either `sample_size` samples or a ~2 s budget is
//! reached, and reports min / mean / max per-iteration time.
//!
//! No statistical analysis, outlier rejection, or HTML reports — numbers are
//! indicative. The value of keeping the harnesses compiling is that switching
//! to real criterion later is a manifest-only change.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.measurement_time,
            max_samples: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    max_samples: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, recording one sample per call: one warm-up
    /// iteration, then up to `sample_size` timed iterations within the
    /// group's time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < self.budget {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            eprintln!("  {group}/{id}: no samples collected");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        eprintln!(
            "  {group}/{id}: [{min:?} {mean:?} {max:?}] ({n} samples)",
            n = self.samples.len()
        );
    }
}

/// `criterion_group!(name, target1, target2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group1, group2, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter("n=10"), &10u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs_and_collects_samples() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
