//! No-op `Serialize` / `Deserialize` derive macros for the offline serde shim.
//!
//! The shim's traits carry blanket implementations, so the derives only need
//! to exist (and accept `#[serde(...)]` attributes) — they emit no code.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
