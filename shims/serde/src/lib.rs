//! Offline stand-in for the `serde` crate.
//!
//! The EDEN crates only *mark* types as serializable (no serializer is wired
//! up anywhere in the workspace), so this shim provides `Serialize` /
//! `Deserialize` as marker traits with blanket implementations, plus no-op
//! derive macros so `#[derive(Serialize, Deserialize)]` keeps compiling.
//! When network access is available, dropping in real serde is a
//! manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    pub use super::DeserializeOwned;
}
